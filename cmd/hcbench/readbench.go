// The zipfian hot-read benchmark behind -readbench: the read-path
// acceleration gate's measurement harness.
//
//	hcbench -readbench BENCH_reads.json            # defaults: zipf 0.99, cache 0.25
//	hcbench -readbench - -zipf 1.2 -cache 0.5      # print to stdout
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"hcompress"
	"hcompress/internal/stats"
	"hcompress/internal/workload"
)

const (
	readBenchKeys  = 32        // corpus size
	readBenchBytes = 256 << 10 // payload per key
	readBenchReads = 1500      // reads per arm
)

// readArm is one side of the cache-on/cache-off comparison.
type readArm struct {
	Cache       bool    `json:"cache"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
	WallSeconds float64 `json:"wall_seconds"`
	HitRatio    float64 `json:"hit_ratio"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
}

// readReport is the full BENCH_reads.json document.
type readReport struct {
	Comment       string  `json:"comment"`
	Date          string  `json:"date"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	CorpusKeys    int     `json:"corpus_keys"`
	TaskBytes     int     `json:"task_bytes"`
	Reads         int     `json:"reads"`
	ZipfS         float64 `json:"zipf_s"`
	CacheFraction float64 `json:"cache_fraction"`
	Off           readArm `json:"cache_off"`
	On            readArm `json:"cache_on"`
	Speedup       float64 `json:"speedup"`
}

// runReadBench measures the hot-read path with and without the
// decompressed-block cache: write a fixed corpus once per arm, then
// replay the identical Zipf(s)-skewed key sequence through Decompress
// (both arms share the sampler seed, so the streams are byte-identical)
// and compare ops/s and latency quantiles. The skew defaults to 0.99 and
// the cache fraction to 0.25 when the flags are left at zero.
func runReadBench(path string, zipfS, cacheFrac float64) error {
	if zipfS == 0 {
		zipfS = 0.99
	}
	if cacheFrac == 0 {
		cacheFrac = 0.25
	}
	// One shared key sequence: the comparison is cache vs no cache, not
	// sampler noise.
	seq := make([]int, readBenchReads)
	z := workload.NewZipf(readBenchKeys, zipfS, 42)
	for i := range seq {
		seq[i] = z.Next()
	}
	off, err := readBenchArm(0, seq)
	if err != nil {
		return fmt.Errorf("cache-off arm: %w", err)
	}
	on, err := readBenchArm(cacheFrac, seq)
	if err != nil {
		return fmt.Errorf("cache-on arm: %w", err)
	}
	rep := readReport{
		Comment: "hcbench -readbench: zipfian hot-read throughput, cache-on vs cache-off over the identical key sequence; " +
			"speedup is hot-read ops/s with the decompressed-block cache over the uncached tier-walk-plus-codec read path",
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		CorpusKeys:    readBenchKeys,
		TaskBytes:     readBenchBytes,
		Reads:         readBenchReads,
		ZipfS:         zipfS,
		CacheFraction: cacheFrac,
		Off:           off,
		On:            on,
		Speedup:       on.OpsPerSec / off.OpsPerSec,
	}
	fmt.Printf("readbench corpus=%d keys x %d KiB, %d reads, zipf=%.2f, cache=%.2f\n",
		readBenchKeys, readBenchBytes>>10, readBenchReads, zipfS, cacheFrac)
	fmt.Printf("cache off: %9.1f ops/s  p50=%.3fms p99=%.3fms\n", off.OpsPerSec, off.P50Millis, off.P99Millis)
	fmt.Printf("cache on:  %9.1f ops/s  p50=%.3fms p99=%.3fms  hit ratio %.3f (%d hits / %d misses)\n",
		on.OpsPerSec, on.P50Millis, on.P99Millis, on.HitRatio, on.Hits, on.Misses)
	fmt.Printf("hot-read speedup: %.1fx\n", rep.Speedup)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// readBenchArm runs one arm: write the corpus, replay the read sequence,
// report throughput and latency quantiles plus the cache counters.
func readBenchArm(cacheFrac float64, seq []int) (readArm, error) {
	c, err := hcompress.New(hcompress.Config{
		ReadCacheFraction: cacheFrac,
		// Repeated-key prefetch would re-warm invalidated entries; the gate
		// measures the demand-path cache alone, so keep arms minimal.
		DisablePrefetch: true,
	})
	if err != nil {
		return readArm{}, err
	}
	defer c.Close()
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, readBenchBytes, 7)
	for k := 0; k < readBenchKeys; k++ {
		if _, err := c.Compress(hcompress.Task{Key: fmt.Sprintf("blk-%d", k), Data: data}); err != nil {
			return readArm{}, err
		}
	}
	lats := make([]time.Duration, 0, len(seq))
	begin := time.Now()
	for _, rank := range seq {
		op := time.Now()
		rep, err := c.Decompress(fmt.Sprintf("blk-%d", rank))
		if err != nil {
			return readArm{}, err
		}
		rep.Release()
		lats = append(lats, time.Since(op))
	}
	wall := time.Since(begin).Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		return lats[int(p*float64(len(lats)-1))].Seconds() * 1e3
	}
	arm := readArm{
		Cache:       cacheFrac > 0,
		OpsPerSec:   float64(len(seq)) / wall,
		P50Millis:   q(0.50),
		P99Millis:   q(0.99),
		WallSeconds: wall,
	}
	st := c.CacheStats()
	arm.Hits, arm.Misses = st.Hits, st.Misses
	if st.Hits+st.Misses > 0 {
		arm.HitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return arm, nil
}

// printCacheStats renders the read-cache counter snapshot after a
// cache-enabled harness run.
func printCacheStats(st hcompress.CacheStats) {
	fmt.Println("--- read cache ---")
	hitRatio := 0.0
	if st.Hits+st.Misses > 0 {
		hitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	fmt.Printf("entries=%d bytes=%d/%d  hits=%d misses=%d (ratio %.3f)  admissions=%d rejects=%d evictions=%d invalidations=%d\n",
		st.Entries, st.Bytes, st.Capacity, st.Hits, st.Misses, hitRatio,
		st.Admissions, st.Rejects, st.Evictions, st.Invalidations)
	fmt.Printf("prefetch issued=%d used=%d failed=%d cancelled=%d\n",
		st.PrefetchIssued, st.PrefetchUsed, st.PrefetchFailed, st.PrefetchCancelled)
}
