// Command hctool runs files through the HCompress pipeline from the shell:
// it analyzes the input, plans compression + placement against a simulated
// hierarchy, and reports what the engine decided — useful for inspecting
// codec selection on real data.
//
// Usage:
//
//	hctool file1.dat file2.h5 ...
//	hctool -priorities archival -seed seed.json big.csv
//	echo "some text" | hctool -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hcompress"
)

func main() {
	var (
		prio     = flag.String("priorities", "equal", "equal|async|archival|raw (read-after-write)")
		seedPath = flag.String("seed", "", "profiler seed JSON (default: builtin)")
		verify   = flag.Bool("verify", true, "decompress and verify round-trip")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hctool [flags] <file>... (use - for stdin)")
		os.Exit(2)
	}
	p, ok := map[string]hcompress.Priorities{
		"equal":    hcompress.PriorityEqual,
		"async":    hcompress.PriorityAsync,
		"archival": hcompress.PriorityArchival,
		"raw":      hcompress.PriorityReadAfterWrite,
	}[*prio]
	if !ok {
		fmt.Fprintf(os.Stderr, "hctool: unknown priorities %q\n", *prio)
		os.Exit(2)
	}
	client, err := hcompress.New(hcompress.Config{Priorities: p, SeedPath: *seedPath})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hctool:", err)
		os.Exit(1)
	}
	defer client.Close()

	exit := 0
	for _, path := range flag.Args() {
		if err := process(client, path, *verify); err != nil {
			fmt.Fprintf(os.Stderr, "hctool: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func process(client *hcompress.Client, path string, verify bool) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("empty input")
	}
	rep, err := client.Compress(hcompress.Task{Key: path, Data: data})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (ratio %.2f), type=%s dist=%s, modeled %.3fms\n",
		path, rep.OriginalBytes, rep.StoredBytes, rep.Ratio,
		rep.DataType, rep.Distribution, rep.VirtualSeconds*1e3)
	for _, st := range rep.SubTasks {
		fmt.Printf("  %8s via %-8s %d -> %d bytes\n", st.Tier, st.Codec, st.OriginalBytes, st.StoredBytes)
	}
	if verify {
		back, err := client.Decompress(path)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		if string(back.Data) != string(data) {
			return fmt.Errorf("verify: round-trip mismatch")
		}
		fmt.Printf("  verified: %d bytes round-trip OK\n", len(back.Data))
	}
	return client.Delete(path)
}
