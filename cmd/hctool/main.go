// Command hctool runs files through the HCompress pipeline from the shell:
// it analyzes the input, plans compression + placement against a simulated
// hierarchy, and reports what the engine decided — useful for inspecting
// codec selection on real data.
//
// Usage:
//
//	hctool file1.dat file2.h5 ...
//	hctool -priorities archival -seed seed.json big.csv
//	hctool -v -trace trace.jsonl big.csv     # decision audit + JSONL trace
//	hctool -slow big.csv                     # per-op stage breakdown table
//	echo "some text" | hctool -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"hcompress"
)

func main() {
	var (
		prio      = flag.String("priorities", "equal", "equal|async|archival|raw (read-after-write)")
		seedPath  = flag.String("seed", "", "profiler seed JSON (default: builtin)")
		verify    = flag.Bool("verify", true, "decompress and verify round-trip")
		verbose   = flag.Bool("v", false, "per-file decision audit: predicted vs actual size and time per sub-task")
		tracePath = flag.String("trace", "", "write the JSONL span/audit trace to this file")
		slow      = flag.Bool("slow", false, "record every operation in the slow-op log and print the stage breakdown table")
		cache     = flag.Float64("cache", 0, "enable the decompressed-block read cache at this fraction of tier 0, verify each file twice so the second read can hit, and print the cache stats table")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hctool [flags] <file>... (use - for stdin)")
		os.Exit(2)
	}
	p, ok := map[string]hcompress.Priorities{
		"equal":    hcompress.PriorityEqual,
		"async":    hcompress.PriorityAsync,
		"archival": hcompress.PriorityArchival,
		"raw":      hcompress.PriorityReadAfterWrite,
	}[*prio]
	if !ok {
		fmt.Fprintf(os.Stderr, "hctool: unknown priorities %q\n", *prio)
		os.Exit(2)
	}
	cfg := hcompress.Config{Priorities: p, SeedPath: *seedPath, EnableTelemetry: *verbose}
	if *cache > 0 {
		cfg.ReadCacheFraction = *cache
		// First-read admission: a CLI run reads each file only a couple of
		// times, so the two-touch default would never show a hit.
		cfg.ReadCacheMinTouches = 1
	}
	if *slow {
		// SampleEvery 1 admits every completed op, so the table shows the
		// full stage anatomy of the run, slow or not.
		cfg.SlowOpSampleEvery = 1
	}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hctool:", err)
			os.Exit(1)
		}
		traceFile = f
		cfg.TraceWriter = f
	}
	client, err := hcompress.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hctool:", err)
		os.Exit(1)
	}
	defer client.Close()
	if traceFile != nil {
		defer traceFile.Close()
	}

	exit := 0
	for _, path := range flag.Args() {
		if err := process(client, path, *verify, *verbose, *cache > 0); err != nil {
			fmt.Fprintf(os.Stderr, "hctool: %s: %v\n", path, err)
			exit = 1
		}
	}
	if *slow {
		printSlowOps(client)
	}
	if *cache > 0 {
		printCacheStats(client.CacheStats())
	}
	os.Exit(exit)
}

// printSlowOps renders the slow-op log as a stage-breakdown table,
// slowest first: where each operation's wall time went (analyze/plan are
// wall clocks; codec/io/retry are the modeled virtual anatomy).
func printSlowOps(client *hcompress.Client) {
	ops := client.SlowOps()
	if len(ops) == 0 {
		return
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].WallSeconds > ops[j].WallSeconds })
	fmt.Printf("\nslow-op log (%d ops, slowest first):\n", len(ops))
	fmt.Printf("%-10s %-24s %9s %9s %9s %9s %9s %9s %5s %s\n",
		"op", "key", "wall ms", "analyze", "plan", "codec", "io", "retry", "subs", "flags")
	for _, op := range ops {
		flags := ""
		if op.Replanned {
			flags += "R"
		}
		if op.Degraded {
			flags += "D"
		}
		if op.Retries > 0 {
			flags += fmt.Sprintf("r%d", op.Retries)
		}
		key := op.Key
		if len(key) > 24 {
			key = key[:21] + "..."
		}
		fmt.Printf("%-10s %-24s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %5d %s\n",
			op.Op, key, op.WallSeconds*1e3, op.AnalyzeSeconds*1e3, op.PlanSeconds*1e3,
			op.CodecSeconds*1e3, op.IOSeconds*1e3, op.RetrySeconds*1e3, len(op.Audits), flags)
	}
}

// printCacheStats renders the read-cache counter table: occupancy,
// hit/miss traffic through the admission gate, and the prefetcher's
// issue/use accounting.
func printCacheStats(st hcompress.CacheStats) {
	hitRatio := 0.0
	if st.Hits+st.Misses > 0 {
		hitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	fmt.Printf("\nread cache:\n")
	fmt.Printf("  %-22s %d entries, %d / %d bytes\n", "size", st.Entries, st.Bytes, st.Capacity)
	fmt.Printf("  %-22s %d / %d (ratio %.3f)\n", "hits / misses", st.Hits, st.Misses, hitRatio)
	fmt.Printf("  %-22s %d admitted, %d rejected by the touch gate\n", "admissions", st.Admissions, st.Rejects)
	fmt.Printf("  %-22s %d evicted, %d invalidated\n", "evictions", st.Evictions, st.Invalidations)
	fmt.Printf("  %-22s %d issued, %d used, %d failed, %d cancelled\n",
		"prefetch", st.PrefetchIssued, st.PrefetchUsed, st.PrefetchFailed, st.PrefetchCancelled)
}

func process(client *hcompress.Client, path string, verify, verbose, cached bool) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("empty input")
	}
	rep, err := client.Compress(hcompress.Task{Key: path, Data: data})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (ratio %.2f), type=%s dist=%s, modeled %.3fms\n",
		path, rep.OriginalBytes, rep.StoredBytes, rep.Ratio,
		rep.DataType, rep.Distribution, rep.VirtualSeconds*1e3)
	for _, st := range rep.SubTasks {
		fmt.Printf("  %8s via %-8s %d -> %d bytes\n", st.Tier, st.Codec, st.OriginalBytes, st.StoredBytes)
	}
	if verbose {
		printAudits(client, rep)
	}
	if verify {
		// With the cache on, read twice: the first read fills the cache,
		// the second must hit and return byte-identical data.
		passes := 1
		if cached {
			passes = 2
		}
		for p := 0; p < passes; p++ {
			back, err := client.Decompress(path)
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			ok := string(back.Data) == string(data)
			n, hit := len(back.Data), back.CacheHit
			back.Release()
			if !ok {
				return fmt.Errorf("verify: round-trip mismatch (cache hit: %v)", hit)
			}
			if hit {
				fmt.Printf("  verified: %d bytes round-trip OK (served from read cache)\n", n)
			} else {
				fmt.Printf("  verified: %d bytes round-trip OK\n", n)
			}
		}
	}
	return client.Delete(path)
}

// printAudits renders the HCDP decision-audit records for the file just
// written: what the engine predicted for each (codec, tier) choice and
// what actually happened, including spills (planned tier != actual tier).
func printAudits(client *hcompress.Client, rep *hcompress.Report) {
	audits := client.Audits()
	if len(audits) == 0 {
		return
	}
	fmt.Printf("  %-4s %-12s %-8s %14s %14s %9s %9s\n",
		"sub", "tier", "codec", "pred ratio", "actual ratio", "pred ms", "actual ms")
	for _, a := range audits {
		tierName := a.Tier
		if a.PlannedTier != a.Tier {
			tierName = a.PlannedTier + ">" + a.Tier // spilled
		}
		predRatio, actRatio := 0.0, 0.0
		if a.PredBytes > 0 {
			predRatio = float64(a.OrigBytes) / float64(a.PredBytes)
		}
		if a.StoredBytes > 0 {
			actRatio = float64(a.OrigBytes) / float64(a.StoredBytes)
		}
		fmt.Printf("  %-4d %-12s %-8s %14.2f %14.2f %9.3f %9.3f\n",
			a.Sub, tierName, a.Codec, predRatio, actRatio,
			a.PredSeconds*1e3, (a.CodecSeconds+a.IOSeconds)*1e3)
	}
	fmt.Printf("  whole task: predicted %.3fms, modeled %.3fms\n",
		rep.PredictedSeconds*1e3, rep.VirtualSeconds*1e3)
}
