package hcompress

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hcompress/internal/analyzer"
	"hcompress/internal/bufpool"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/fanout"
	"hcompress/internal/fault"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/readcache"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/telemetry"
	"hcompress/internal/tier"
)

// ErrClosed is returned by operations on a closed Client, Shard, or
// Router.
var ErrClosed = errors.New("hcompress: client is closed")

// Task is one I/O request: the paper's "data buffer, operation tuple".
// The operation is selected by the method (Compress writes, Decompress
// reads).
type Task struct {
	// Key names the task; Decompress retrieves by the same key.
	Key string
	// Data is the uncompressed payload.
	Data []byte
	// DataType optionally overrides type detection ("int", "float",
	// "text", "binary") — the self-described fast path.
	DataType string
	// Distribution optionally overrides distribution detection
	// ("uniform", "normal", "exponential", "gamma").
	Distribution string
}

// SubTaskReport describes one placed sub-task. On writes it carries the
// HCDP engine's predictions next to the actuals so callers can compute
// prediction error without the audit log; the Predicted fields are zero
// on reads (a read executes the write-time schema, it does not plan).
type SubTaskReport struct {
	Tier          string
	Codec         string
	OriginalBytes int64
	StoredBytes   int64
	// PredictedBytes is the engine's alignment-rounded compressed-size
	// estimate; PredictedSeconds its modeled sub-task duration (eq. 3/4).
	PredictedBytes   int64
	PredictedSeconds float64
	// CodecSeconds and IOSeconds are the sub-task's share of the
	// operation's actual cost anatomy.
	CodecSeconds float64
	IOSeconds    float64
}

// Report summarizes one executed task.
type Report struct {
	Key            string
	OriginalBytes  int64
	StoredBytes    int64
	Ratio          float64 // original over stored (>= "1" modulo headers)
	VirtualSeconds float64 // modeled task duration (codec + tiered I/O)
	CodecSeconds   float64 // compression or decompression time
	IOSeconds      float64 // modeled storage time
	// PredictedSeconds is the engine's modeled total duration for the
	// schema it chose (writes only) — compare with VirtualSeconds for
	// the whole-task prediction error.
	PredictedSeconds float64
	DataType         string // what the Input Analyzer saw
	Distribution     string
	SubTasks         []SubTaskReport
	// Data carries the reassembled payload on Decompress. The caller
	// owns it: it is safe to read and retain indefinitely. Callers that
	// are done with it can hand the buffer back to the library's
	// internal arena with Release — entirely optional; an unreleased
	// buffer is ordinary garbage-collected memory. One nuance when the
	// read cache is enabled (Config.ReadCacheFraction > 0): a cache-hit
	// report shares its buffer with the cache, so treat Data as
	// read-only until Release; with the cache off it is exclusively
	// owned and safe to mutate, as before.
	Data []byte
	// CacheHit is true when Data was served from the read cache: the
	// operation skipped the tier walk and the codec, and the virtual-
	// time fields above are zero (a client-side DRAM hit is off the
	// modeled timeline).
	CacheHit bool
	// Degraded is non-nil when the write abandoned every compressing
	// schema and stored the task uncompressed on a fallback tier. The
	// write still succeeded; errors.Is(Degraded, ErrDegraded) is true
	// and Degraded.Cause explains why the planned path failed.
	Degraded *DegradedError

	// release, when set, returns Data through the read cache's
	// refcounting instead of a raw arena put: the buffer goes back to
	// the arena only when both the cache and every outstanding report
	// have dropped it, so Release can never double-free a buffer the
	// cache still serves (or that an invalidation already freed).
	release func()
}

// Release returns the report's Data buffer to the internal buffer arena
// so a later Decompress can reuse it without allocating. It is optional
// and idempotent; Data must not be used after Release.
func (r *Report) Release() {
	if r == nil || r.Data == nil {
		return
	}
	if r.release != nil {
		r.release()
		r.release = nil
	} else {
		bufpool.Put(r.Data)
	}
	r.Data = nil
}

// Shard is one complete, independent HCompress pipeline: the IA, CCP,
// SM, HCDP engine, Compression Manager, tiered store, worker pool, and
// virtual clock that used to be the whole Client. A Router owns N of
// them and routes keys across them; the Client facade is a Router with
// exactly one. A Shard shares no mutable state with its siblings — no
// lock, pool, store, or clock spans shards — which is what makes the
// router's aggregate views safe to compose shard-by-shard. It is safe
// for concurrent use.
//
// Concurrency model: there is no global pipeline lock. Each operation is
// staged — analyze (pure CPU, no locks), plan (engine RW-locked memo),
// execute (worker-pool codec fan-out, per-tier store locks) — and the
// only client-level state is the virtual clock (its own small lock, see
// vclock) and the lifecycle RWMutex below, whose read side is shared by
// every operation so Status/Stats never wait behind in-flight codec work.
// Close takes the write side, so it drains in-flight operations before
// flushing the feedback loop.
type Shard struct {
	mu     sync.RWMutex // lifecycle only: ops hold R, Close holds W
	closed bool

	hier  tier.Hierarchy
	sd    *seed.Seed
	pred  *predictor.CCP
	mon   *monitor.SystemMonitor
	eng   *core.Engine
	mgr   *manager.Manager
	st    *store.Store
	pool  *fanout.Pool // shared persistent worker pool for codec fan-outs
	clock vclock       // virtual time, self-locked

	// Background demoter (nil channels when DemotionInterval is zero).
	demoteStop chan struct{}
	demoteDone chan struct{}

	// Read accelerator (nil when ReadCacheFraction is zero): the
	// decompressed-block cache and its background prefetcher. Like the
	// demoter, the prefetch loop never takes c.mu; Close stops it before
	// tearing the pool and store down.
	cache        *readcache.Cache
	prefetchStop chan struct{}
	prefetchDone chan struct{}
	prefetchKick chan struct{}

	// Telemetry (all nil/zero when off — the nil-registry fast path).
	tel        *telemetry.Registry
	sink       *telemetry.Sink
	cm         clientMetrics
	audit      auditLog
	faults     faultLog // health-transition ring; always on (small, self-locked)
	slow       *slowLog // slow-op ring; nil unless a SlowOp* policy is set
	metricsLn  net.Listener
	metricsSrv *http.Server
	expvarID   uint64

	// Request identity: operations arriving without a propagated request
	// ID (direct library use) get one synthesized from reqSeq so every
	// span tree is still groupable by trace ID. reqPrefix carries the
	// shard label so IDs stay unique across a Router's shards; it is
	// empty on a single-shard Client, keeping its traces byte-identical
	// to the pre-sharding format.
	reqSeq    atomic.Uint64
	reqPrefix string

	seedPath string
	saveSeed bool
}

// newShard initializes one complete pipeline — the work the paper
// performs when intercepting MPI_Init: load the seed, build the
// component stack, and prepare the codec pool. New and NewRouter are the
// public faces.
func newShard(cfg Config) (*Shard, error) {
	h, err := cfg.hierarchy()
	if err != nil {
		return nil, err
	}
	if cfg.ReadCacheFraction < 0 || cfg.ReadCacheFraction > 1 {
		return nil, fmt.Errorf("hcompress: ReadCacheFraction %v: need 0 <= fraction <= 1", cfg.ReadCacheFraction)
	}
	var sd *seed.Seed
	if cfg.SeedPath != "" {
		sd, err = seed.Load(cfg.SeedPath)
		if err != nil {
			return nil, err
		}
	} else {
		sd = seed.Builtin(h)
	}
	if cfg.FeedbackInterval > 0 {
		sd.FeedbackInterval = cfg.FeedbackInterval
	}
	var sched fault.Injector
	if cfg.FaultInjector != nil {
		if sched, err = cfg.FaultInjector.schedule(h); err != nil {
			return nil, err
		}
	}
	var reg *telemetry.Registry
	if cfg.telemetryEnabled() {
		if cfg.shardLabel != "" {
			reg = telemetry.New(telemetry.L("shard", cfg.shardLabel))
		} else {
			reg = telemetry.New()
		}
	}
	// File-backed tiers of different shards must not share a journal
	// directory, so each shard roots its backends one level down.
	dataDir := cfg.DataDir
	if dataDir != "" && cfg.shardLabel != "" {
		dataDir = filepath.Join(dataDir, cfg.shardLabel)
	}
	// The health sink closes over the monitor built right after the
	// store — backends never operate during construction, so the slot is
	// always filled by the time the sink can fire.
	var mon *monitor.SystemMonitor
	st, err := store.Open(h, store.Options{
		KeepData:      !cfg.modeled,
		DataDir:       dataDir,
		FaultInjector: sched,
		// Every store outcome feeds the health machine; health
		// transitions come back to the client (audit ring + trace sink)
		// via the event sink installed below, once c exists.
		HealthSink: func(now float64, tier int, err error) { mon.Observe(now, tier, err) },
		Telemetry:  reg,
	})
	if err != nil {
		return nil, err
	}
	bufpool.SetTelemetry(reg)
	pred := predictor.New(sd)
	pred.SetTelemetry(reg)
	mon = monitor.New(st, cfg.MonitorIntervalSec)
	mon.SetHealthPolicy(cfg.OfflineThreshold, cfg.ProbeIntervalSec)
	mon.SetTelemetry(reg)
	eng, err := core.New(pred, mon, core.Config{
		Weights:            cfg.Priorities.toWeights(),
		DisableCompression: cfg.DisableCompression,
		DisablePlanCache:   cfg.DisablePlanCache,
		Codecs:             cfg.Codecs,
	})
	if err != nil {
		return nil, err
	}
	eng.SetTelemetry(reg)
	var oracle manager.Oracle = manager.RealOracle{}
	if cfg.modeled {
		oracle = manager.ModelOracle{Truth: sd}
	}
	mgr := manager.New(st, pred, oracle)
	mgr.SetParallelism(cfg.Parallelism)
	retryMax := -1 // keep the manager default
	switch {
	case cfg.RetryMax > 0:
		retryMax = cfg.RetryMax
	case cfg.RetryMax < 0:
		retryMax = 0 // retries disabled
	}
	mgr.SetRetryPolicy(retryMax, cfg.RetryBackoffSec, 0)
	mgr.SetTelemetry(reg)
	// Tasks whose pieces all survived on durable tiers become readable
	// again here; their schemas are rebuilt from the on-media headers.
	if _, err := mgr.AdoptRecovered(); err != nil {
		st.Close()
		return nil, err
	}
	pool := fanout.NewPool(mgr.Parallelism())
	pool.SetTelemetry(reg)
	mgr.SetPool(pool)
	c := &Shard{
		hier:     h,
		sd:       sd,
		pred:     pred,
		mon:      mon,
		eng:      eng,
		mgr:      mgr,
		st:       st,
		pool:     pool,
		tel:      reg,
		sink:     cfg.traceSink,
		cm:       newClientMetrics(reg),
		seedPath: cfg.SeedPath,
		saveSeed: cfg.SaveSeedOnClose && cfg.SeedPath != "",
	}
	if c.sink == nil {
		c.sink = telemetry.NewSink(cfg.TraceWriter)
	}
	if cfg.ReadCacheFraction > 0 && !cfg.modeled {
		// The cache holds decompressed payloads, so it only exists when
		// the store keeps data; modeled pipelines (test-only) run without
		// it, which also keeps the trace-determinism contract untouched.
		minTouches := cfg.ReadCacheMinTouches
		if minTouches == 0 {
			minTouches = 2
		}
		ringSize := cfg.AccessRingSize
		if ringSize == 0 {
			ringSize = 256
		}
		capBytes := int64(cfg.ReadCacheFraction * float64(h.Tiers[0].Capacity))
		c.cache = readcache.New(capBytes, minTouches, ringSize)
		c.cache.SetTelemetry(reg)
		// Demoted keys leave the cache: their cached meta (and the hot-set
		// premise that put them there) is stale once the demoter cools them.
		mgr.SetDemoteNotify(func(keys []string) {
			for _, k := range keys {
				c.cache.Invalidate(k)
			}
		})
	}
	c.faults.cap = 256
	mon.SetEventSink(c.onHealthEvent)
	if reg != nil {
		c.audit.cap = cfg.AuditLogSize
		if c.audit.cap == 0 {
			c.audit.cap = 1024
		}
		c.expvarID = expvarRegister(reg)
	}
	if cfg.SlowOpThreshold > 0 || cfg.SlowOpSampleEvery > 0 {
		sl := &slowLog{thresh: cfg.SlowOpThreshold.Seconds(), cap: cfg.SlowOpLogSize}
		if cfg.SlowOpSampleEvery > 0 {
			sl.every = uint64(cfg.SlowOpSampleEvery)
		}
		if sl.cap == 0 {
			sl.cap = 256
		}
		c.slow = sl
	}
	if cfg.shardLabel != "" {
		c.reqPrefix = "s" + cfg.shardLabel + "-"
	}
	if cfg.MetricsAddr != "" {
		if err := c.startMetricsServer(cfg.MetricsAddr, cfg.EnableProfiling); err != nil {
			expvarUnregister(c.expvarID)
			pool.Close()
			return nil, err
		}
	}
	if cfg.DemotionInterval > 0 {
		high, low := cfg.DemotionHighWater, cfg.DemotionLowWater
		if high == 0 {
			high = 0.85
		}
		if low == 0 {
			low = 0.70
		}
		if !(0 < low && low < high && high <= 1) {
			if c.metricsSrv != nil {
				_ = c.metricsSrv.Close()
			}
			expvarUnregister(c.expvarID)
			pool.Close()
			return nil, fmt.Errorf("hcompress: demotion watermarks low=%v high=%v: need 0 < low < high <= 1", low, high)
		}
		c.demoteStop = make(chan struct{})
		c.demoteDone = make(chan struct{})
		go c.demoteLoop(cfg.DemotionInterval, high, low, cfg.DemotionSliceSubTasks)
	}
	if c.cache != nil && !cfg.DisablePrefetch {
		depth := cfg.PrefetchDepth
		if depth == 0 {
			depth = 2
		}
		c.prefetchStop = make(chan struct{})
		c.prefetchDone = make(chan struct{})
		c.prefetchKick = make(chan struct{}, 1)
		go c.prefetchLoop(depth)
	}
	return c, nil
}

// demoteLoop is the background demoter: every interval it drains any
// tier filled past its high watermark down to the low watermark, one
// bounded DemoteSlice at a time. It never takes the lifecycle lock —
// Close stops the loop before tearing the store down, and each slice
// synchronizes on the manager lock like any data-path operation — so
// demotion can never deadlock with or stall behind Close.
func (c *Shard) demoteLoop(interval time.Duration, high, low float64, sliceN int) {
	defer close(c.demoteDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.demoteStop:
			return
		case <-tick.C:
			c.demoteOnce(high, low, sliceN)
		}
	}
}

// demoteOnce runs one demotion pass over every tier that has something
// below it to demote into.
func (c *Shard) demoteOnce(high, low float64, sliceN int) {
	for i := 0; i < c.hier.Len()-1; i++ {
		capB := float64(c.hier.Tiers[i].Capacity)
		if capB <= 0 || float64(c.st.Used(i)) < high*capB {
			continue
		}
		// Above the high watermark: drain to the low watermark in
		// bounded slices. A full cursor wrap that moves nothing means
		// everything left is pinned above a full tier — give up until
		// the next tick rather than spin.
		var sinceWrap int64
		for float64(c.st.Used(i)) > low*capB {
			select {
			case <-c.demoteStop:
				return
			default:
			}
			var wall time.Time
			if c.tel != nil {
				wall = time.Now()
			}
			moved, wrapped := c.mgr.DemoteSlice(c.clock.Now(), i, sliceN)
			if c.tel != nil {
				c.cm.demoteSlices.Inc()
				c.cm.demoteBytes.Add(moved)
				c.cm.demoteSeconds.Observe(time.Since(wall).Seconds())
			}
			sinceWrap += moved
			if wrapped {
				if sinceWrap == 0 {
					break
				}
				sinceWrap = 0
			}
		}
	}
}

// reqInfo resolves the identity an operation runs under: the request ID,
// tenant, and priority class the service layer propagated via
// telemetry.WithReq, with gaps filled locally — the scheduling class is
// read off the fanout context tag, and an absent request ID is
// synthesized from the shard's own counter so direct library use still
// yields groupable span trees. The counter only advances when something
// will consume the ID (trace sink or slow-op log), keeping the
// metrics-only fast path free of shared-counter traffic.
func (c *Shard) reqInfo(ctx context.Context) telemetry.ReqInfo {
	ri := telemetry.ReqOf(ctx)
	if ri.Class == "" {
		if fanout.ClassOf(ctx) == fanout.Batch {
			ri.Class = "batch"
		} else {
			ri.Class = "interactive"
		}
	}
	if ri.ID == "" && (c.sink != nil || c.slow != nil) {
		ri.ID = fmt.Sprintf("%sr%d", c.reqPrefix, c.reqSeq.Add(1))
	}
	return ri
}

func (c *Shard) attrFor(t Task) analyzer.Result {
	var hint analyzer.Hint
	if dt, ok := stats.TypeByName(t.DataType); ok && t.DataType != "" {
		hint.Type = &dt
	}
	if d, ok := stats.DistByName(t.Distribution); ok && t.Distribution != "" {
		hint.Dist = &d
	}
	return analyzer.AnalyzeWithHint(t.Data, &hint)
}

// Compress runs the write pipeline in three stages: analyze the task
// (pure CPU over the caller's buffer, no locks held), plan a compression
// + placement schema with the HCDP engine, and execute it against the
// tiered store through the Compression Manager's worker pool. Concurrent
// callers only synchronize on the component that each stage actually
// touches.
func (c *Shard) Compress(t Task) (*Report, error) {
	return c.CompressContext(context.Background(), t)
}

// CompressContext is Compress under a context: cancellation drains the
// codec fan-out and returns ctx.Err() before anything touches the store
// — a cancelled write leaves no trace.
//
// Failure handling, in order: a failed plan or placement triggers one
// monitor refresh + replan (the stale-view repair); if no compressing
// schema can execute at all — tiers offline, capacity gone — the write
// degrades to storing the task uncompressed on the first tier that will
// take it. A degraded write succeeds: the report carries a non-nil
// Degraded (errors.Is(rep.Degraded, ErrDegraded)) instead of an error.
func (c *Shard) CompressContext(ctx context.Context, t Task) (*Report, error) {
	if t.Key == "" {
		return nil, errors.New("hcompress: task key required")
	}
	if len(t.Data) == 0 {
		return nil, errors.New("hcompress: empty task data")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var wall time.Time
	timed := c.tel != nil
	if timed {
		wall = time.Now()
	}

	// Stage 1: analyze. No lock held — this is the CPU-heavy scan of the
	// caller's buffer and must overlap other ranks' codec work.
	attr := c.attrFor(t)
	size := int64(len(t.Data))
	var analyzeSecs, planSecs float64
	if timed {
		analyzeSecs = time.Since(wall).Seconds()
	}

	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	start := c.clock.Now()
	plan := func() (core.Schema, error) {
		if !timed {
			return c.eng.Plan(start, attr, size)
		}
		pw := time.Now()
		schema, err := c.eng.Plan(start, attr, size)
		planSecs += time.Since(pw).Seconds()
		return schema, err
	}

	// Stage 2: plan. Stage 3: execute.
	schema, err := plan()
	if err != nil {
		err = fmt.Errorf("hcompress: planning %q: %w", t.Key, err)
	}
	var res manager.Result
	if err == nil {
		res, err = c.mgr.ExecuteWriteCtx(ctx, start, t.Key, t.Data, size, attr, schema)
	}
	replanned := false
	if err != nil && ctx.Err() == nil {
		// The monitor's view may have been stale — or a tier just went
		// offline and the health machine masked it. Refresh and replan
		// once; the new plan cannot target a masked tier.
		c.mon.ForceRefresh()
		c.cm.replans.Inc()
		replanned = true
		schema2, err2 := plan()
		if err2 != nil {
			err = fmt.Errorf("hcompress: replanning %q: %w (after %v)", t.Key, err2, err)
		} else {
			schema = schema2
			res, err = c.mgr.ExecuteWriteCtx(ctx, start, t.Key, t.Data, size, attr, schema)
			if err != nil {
				err = fmt.Errorf("hcompress: executing %q: %w", t.Key, err)
			}
		}
	}
	var degraded *DegradedError
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			c.cm.opErrs["compress"].Inc()
			return nil, cerr
		}
		// Graceful degradation: no compressing schema is executable, but
		// the data must land. Store it uncompressed; the manager's spill
		// chain walks the hierarchy until some healthy tier takes it.
		schema = degradedSchema(size)
		var derr error
		res, derr = c.mgr.ExecuteWriteCtx(ctx, start, t.Key, t.Data, size, attr, schema)
		if derr != nil {
			c.cm.opErrs["compress"].Inc()
			return nil, err // the planned path's failure names the root cause
		}
		degraded = &DegradedError{
			Key:   t.Key,
			Tier:  c.hier.Tiers[res.SubResults[0].Tier].Name,
			Cause: err,
		}
		c.cm.degradedWrites.Inc()
	}
	c.clock.AdvanceTo(res.End)
	if c.cache != nil {
		// Strict invalidation on overwrite: drop any cached payload for
		// this key and revoke in-flight fills that may carry the old bytes.
		c.cache.Invalidate(t.Key)
	}
	rep := c.report(t.Key, size, attr, res, start)
	rep.PredictedSeconds = schema.PredTime
	rep.Degraded = degraded
	if c.tel != nil {
		wallSecs := time.Since(wall).Seconds()
		c.cm.ops["compress"].Inc()
		c.cm.opSeconds["compress"].Observe(wallSecs)
		c.cm.stageAnalyze.Observe(analyzeSecs)
		c.cm.stagePlan.Observe(planSecs)
		c.cm.observeStages(res)
		ri := c.reqInfo(ctx)
		audits := c.compressTrace(ri, t.Key, attr, size, schema, res, start, replanned)
		if c.slow.shouldRecord(wallSecs) {
			c.slowOp(ri, "compress", t.Key, res, wallSecs, analyzeSecs, planSecs, replanned, degraded != nil, audits)
		}
	}
	return rep, nil
}

// degradedSchema is the last-resort write plan: the whole task as one
// uncompressed sub-task, nominally on the fastest tier — the manager's
// spill chain walks it down to whatever tier actually accepts it.
func degradedSchema(size int64) core.Schema {
	return core.Schema{SubTasks: []core.SubTask{{
		Offset: 0, Length: size, Tier: 0, Codec: codec.None, PredSize: size,
	}}}
}

// Decompress reads back the task stored under key, decoding each
// sub-task's metadata header to select the decompression library. The
// report carries the data type and distribution the Input Analyzer saw at
// write time (persisted in the task metadata).
func (c *Shard) Decompress(key string) (*Report, error) {
	return c.DecompressContext(context.Background(), key)
}

// DecompressContext is Decompress under a context: cancellation drains
// the decompression fan-out, releases every pinned payload, and returns
// ctx.Err(). A payload whose CRC32C disagrees with its header fails with
// an error matching ErrCorrupted.
func (c *Shard) DecompressContext(ctx context.Context, key string) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var wall time.Time
	if c.tel != nil {
		wall = time.Now()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.cache != nil {
		if rep, ok := c.cacheHit(ctx, key, wall); ok {
			return rep, nil
		}
	}
	size, attr, ok := c.mgr.TaskInfo(key)
	if !ok {
		c.cm.opErrs["decompress"].Inc()
		return nil, fmt.Errorf("hcompress: unknown task %q: %w", key, ErrNotFound)
	}
	// Open the fill before touching the store: a concurrent overwrite or
	// delete then lands after the token exists and aborts it, so bytes
	// read from the pre-overwrite world can never enter the cache.
	var fill *readcache.Fill
	if c.cache != nil {
		fill = c.cache.BeginFill(key)
	}
	start := c.clock.Now()
	res, err := c.mgr.ExecuteReadCtx(ctx, start, key)
	if err != nil {
		if fill != nil {
			c.cache.Abort(fill, false)
		}
		c.cm.opErrs["decompress"].Inc()
		return nil, err
	}
	c.clock.AdvanceTo(res.End)
	rep := c.report(key, size, attr, res, start)
	rep.Data = res.Data
	if fill != nil {
		// Zero-copy admission: the cache and the report share the buffer
		// under one refcount; the report's pin comes back as release.
		if release, ok := c.cache.Commit(fill, res.Data, readcache.Meta{
			Size: size, Stored: res.Stored,
			DataType: rep.DataType, Distribution: rep.Distribution,
		}); ok {
			rep.release = release
		}
	}
	if c.tel != nil {
		wallSecs := time.Since(wall).Seconds()
		c.cm.ops["decompress"].Inc()
		c.cm.opSeconds["decompress"].Observe(wallSecs)
		c.cm.observeStages(res)
		ri := c.reqInfo(ctx)
		c.decompressTrace(ri, key, res, start)
		if c.slow.shouldRecord(wallSecs) {
			c.slowOp(ri, "decompress", key, res, wallSecs, 0, 0, false, false, nil)
		}
	}
	return rep, nil
}

func (c *Shard) report(key string, size int64, attr analyzer.Result, res manager.Result, start float64) *Report {
	rep := &Report{
		Key:            key,
		OriginalBytes:  size,
		StoredBytes:    res.Stored,
		VirtualSeconds: res.End - start,
		CodecSeconds:   res.CodecTime,
		IOSeconds:      res.IOTime,
		DataType:       attr.Type.String(),
		Distribution:   attr.Dist.String(),
	}
	if res.Stored > 0 {
		rep.Ratio = float64(size) / float64(res.Stored)
	}
	for _, sr := range res.SubResults {
		name := "?"
		if cdc, err := codec.ByID(sr.Codec); err == nil {
			name = cdc.Name()
		}
		rep.SubTasks = append(rep.SubTasks, SubTaskReport{
			Tier:             c.hier.Tiers[sr.Tier].Name,
			Codec:            name,
			OriginalBytes:    sr.OrigLen,
			StoredBytes:      sr.Stored,
			PredictedBytes:   sr.PredStored,
			PredictedSeconds: sr.PredTime,
			CodecSeconds:     sr.CodecTime,
			IOSeconds:        sr.IOTime,
		})
	}
	return rep
}

// Delete removes a stored task and frees its tier capacity.
func (c *Shard) Delete(key string) error {
	var wall time.Time
	if c.tel != nil {
		wall = time.Now()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	err := c.mgr.Delete(key)
	if c.cache != nil {
		// Invalidate even when the delete failed: the token revocation is
		// cheap and a half-deleted task must never serve from cache.
		c.cache.Invalidate(key)
	}
	if c.tel != nil {
		if err != nil {
			c.cm.opErrs["delete"].Inc()
		} else {
			c.cm.ops["delete"].Inc()
			c.cm.opSeconds["delete"].Observe(time.Since(wall).Seconds())
		}
	}
	return err
}

// SetPriorities changes the cost weighting at runtime (§IV-F2). The swap
// is atomic: in-flight plans finish under the old weights, later plans
// see the new ones (the engine's weight generation counter invalidates
// its memo).
func (c *Shard) SetPriorities(p Priorities) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.eng.SetWeights(p.toWeights())
}

// TierStatusReport is the System Monitor's public view of one tier.
type TierStatusReport struct {
	Name string
	// Backend names the tier's payload plane: "mem", "file", or "cloud".
	Backend        string
	CapacityBytes  int64
	UsedBytes      int64
	RemainingBytes int64
	QueueLength    int
	// Health is the tier's health-machine state: "healthy", "degraded",
	// or "offline". Offline tiers are masked out of HCDP placement until
	// a recovery probe succeeds.
	Health string
	// ConsecutiveErrors is the current observed-error streak (zero when
	// healthy).
	ConsecutiveErrors int
	// LastTransitionVSec is the virtual time of the last health-state
	// change (zero if the tier has never transitioned).
	LastTransitionVSec float64
}

// Status reports the hierarchy's occupancy and health. It never waits on
// in-flight codec work: the store samples each tier under that tier's
// own lock, and health state lives in the monitor.
func (c *Shard) Status() []TierStatusReport {
	c.mu.RLock()
	defer c.mu.RUnlock()
	health := c.mon.Health()
	var out []TierStatusReport
	for i, s := range c.st.Status(c.clock.Now()) {
		r := TierStatusReport{
			Name:           s.Name,
			Backend:        s.Backend,
			CapacityBytes:  s.Capacity,
			UsedBytes:      s.Used,
			RemainingBytes: s.Remaining,
			QueueLength:    s.QueueLen,
		}
		if i < len(health) {
			r.Health = health[i].State.String()
			r.ConsecutiveErrors = health[i].ErrStreak
			r.LastTransitionVSec = health[i].LastTransition
		}
		out = append(out, r)
	}
	return out
}

// TierHealthReport is one tier's health snapshot.
type TierHealthReport struct {
	Name string
	// State is "healthy", "degraded", or "offline".
	State string
	// ConsecutiveErrors is the current observed-error streak.
	ConsecutiveErrors int
	// LastTransitionVSec is the virtual time of the last state change.
	LastTransitionVSec float64
	// NextProbeVSec is when an offline tier is next exposed to placement
	// as a recovery probe (zero unless offline).
	NextProbeVSec float64
}

// Health snapshots every tier's health state — the summary face of the
// health machine that Status folds into its per-tier rows.
func (c *Shard) Health() []TierHealthReport {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []TierHealthReport
	for _, h := range c.mon.Health() {
		out = append(out, TierHealthReport{
			Name:               h.Name,
			State:              h.State.String(),
			ConsecutiveErrors:  h.ErrStreak,
			LastTransitionVSec: h.LastTransition,
			NextProbeVSec:      h.NextProbe,
		})
	}
	return out
}

// Advance moves the virtual clock forward by dv seconds (non-positive
// values are ignored). Fault windows, health probes, and retry backoff
// all live on the virtual timeline, so tests and benchmarks use Advance
// to step across an outage or into a recovery window deterministically.
func (c *Shard) Advance(dv float64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.clock.Advance(dv)
}

// Stats exposes runtime counters for observability.
type Stats struct {
	// ModelAccuracy is the CCP's running prediction accuracy in [0, 1]
	// (the paper's "accuracy (R2)").
	ModelAccuracy float64
	// FeedbackQueued and FeedbackAbsorbed count feedback-loop events.
	FeedbackQueued   int
	FeedbackAbsorbed int
	// MemoHits / MemoMisses describe the HCDP engine's DP cache.
	MemoHits   int64
	MemoMisses int64
	// PlanCacheHits / PlanCacheMisses describe the engine's
	// whole-schema plan cache (zero when disabled or bypassed).
	PlanCacheHits   int64
	PlanCacheMisses int64
	// VirtualSeconds is the client's modeled elapsed time.
	VirtualSeconds float64
	// Tasks is the number of live stored tasks.
	Tasks int
}

// Stats snapshots runtime counters. Like Status, it only touches
// self-locked components and never blocks behind in-flight codec work.
func (c *Shard) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	q, a := c.pred.Stats()
	h, m := c.eng.MemoStats()
	ph, pm := c.eng.PlanCacheStats()
	return Stats{
		ModelAccuracy:    c.pred.R2(),
		FeedbackQueued:   q,
		FeedbackAbsorbed: a,
		MemoHits:         h,
		MemoMisses:       m,
		PlanCacheHits:    ph,
		PlanCacheMisses:  pm,
		VirtualSeconds:   c.clock.Now(),
		Tasks:            c.mgr.Tasks(),
	}
}

// Close finalizes the client — the MPI_Finalize hook in the paper: flush
// the feedback loop, optionally persist the evolved model back to the
// JSON seed, and release in-memory structures. Close takes the lifecycle
// write lock, so it waits for in-flight operations to drain.
func (c *Shard) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	// Stop the background demoter first (it never takes c.mu, so waiting
	// under the write lock is safe), then the worker pool, so nothing
	// touches the store once teardown begins.
	if c.demoteStop != nil {
		close(c.demoteStop)
		<-c.demoteDone
	}
	// The prefetcher goes next, for the same reason, and before the pool:
	// an in-flight prefetch fans decompression through the shared pool.
	if c.prefetchStop != nil {
		close(c.prefetchStop)
		<-c.prefetchDone
	}
	c.pool.Close()
	if c.metricsSrv != nil {
		_ = c.metricsSrv.Close()
		c.metricsSrv, c.metricsLn = nil, nil
	}
	if c.tel != nil {
		expvarUnregister(c.expvarID)
	}
	c.pred.Flush()
	if c.saveSeed {
		c.sd.ModelCoef = c.pred.SnapshotCoef()
		if err := c.sd.Save(c.seedPath); err != nil {
			return err
		}
	}
	if c.cache != nil {
		c.cache.InvalidateAll() // hand cached payloads back to the arena
	}
	return c.st.Close()
}
