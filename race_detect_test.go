//go:build race

package hcompress

// raceDetectorEnabled gates wall-clock-sensitive assertions: the race
// detector multiplies real codec times by roughly an order of magnitude,
// so thresholds on measured-vs-predicted timing accuracy are meaningless
// under instrumentation (the builtin seed profiles uninstrumented code).
const raceDetectorEnabled = true
