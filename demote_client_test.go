package hcompress

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"hcompress/internal/stats"
)

// demoteTiers is a hierarchy whose fast tier fills after a handful of
// 1 MiB tasks, so watermark behavior is easy to provoke.
func demoteTiers() []TierSpec {
	return []TierSpec{
		{Name: "ram", CapacityBytes: 8 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
		{Name: "nvme", CapacityBytes: 256 << 20, LatencySec: 30e-6, BandwidthBps: 2e9, Lanes: 2},
		{Name: "pfs", CapacityBytes: 64 << 30, LatencySec: 5e-3, BandwidthBps: 500e6, Lanes: 4},
	}
}

// fillTier0 writes modeled tasks until tier 0 crosses frac of capacity;
// it skips the test if the engine refuses to place there.
func fillTier0(t *testing.T, c *Client, frac float64) {
	t.Helper()
	capB := float64(c.hier.Tiers[0].Capacity)
	for i := 0; i < 64; i++ {
		data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, int64(i))
		if _, err := c.Compress(Task{Key: fmt.Sprintf("fill%d", i), Data: data,
			DataType: "float", Distribution: "gamma"}); err != nil {
			t.Fatal(err)
		}
		if float64(c.st.Used(0)) >= frac*capB {
			return
		}
	}
	t.Skipf("engine never filled tier 0 past %.0f%% (used %d of %.0f)", frac*100, c.st.Used(0), capB)
}

// TestDemoteOnceRespectsWatermarks drives one demotion pass directly:
// above the high watermark it must drain tier 0 to the low watermark;
// below the high watermark it must not touch anything.
func TestDemoteOnceRespectsWatermarks(t *testing.T) {
	c := newClient(t, Config{Tiers: demoteTiers(), modeled: true})
	fillTier0(t, c, 0.86)
	capB := float64(c.hier.Tiers[0].Capacity)

	c.demoteOnce(0.85, 0.70, 64)
	if used := float64(c.st.Used(0)); used > 0.70*capB {
		t.Errorf("after demotion pass tier 0 holds %.0f bytes, want <= low watermark %.0f", used, 0.70*capB)
	}

	// Below the high watermark a pass is a no-op.
	before := c.st.Used(0)
	c.demoteOnce(0.85, 0.70, 64)
	if got := c.st.Used(0); got != before {
		t.Errorf("pass below high watermark moved data: %d -> %d", before, got)
	}

	// Everything must still read back.
	for i := 0; ; i++ {
		key := fmt.Sprintf("fill%d", i)
		if _, _, ok := c.mgr.TaskInfo(key); !ok {
			break
		}
		if _, err := c.Decompress(key); err != nil {
			t.Fatalf("read %s after demotion: %v", key, err)
		}
	}
}

// TestBackgroundDemoterDrainsBurst checks the DemotionInterval loop end
// to end: after a burst overfills tier 0, the background goroutine must
// bring it under the low watermark without any data-path call.
func TestBackgroundDemoterDrainsBurst(t *testing.T) {
	c := newClient(t, Config{
		Tiers:            demoteTiers(),
		modeled:          true,
		DemotionInterval: time.Millisecond,
		EnableTelemetry:  true,
	})
	fillTier0(t, c, 0.86)
	capB := float64(c.hier.Tiers[0].Capacity)
	deadline := time.Now().Add(10 * time.Second)
	for float64(c.st.Used(0)) > 0.70*capB {
		if time.Now().After(deadline) {
			t.Fatalf("background demoter never drained tier 0: %d of %.0f", c.st.Used(0), capB)
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap := c.Snapshot()
	if snap.Counters["hc_demoter_slices_total"] == 0 {
		t.Error("demoter ran but recorded no slices")
	}
	if snap.Counters["hc_demoter_bytes_total"] == 0 {
		t.Error("demoter ran but recorded no bytes")
	}
}

// TestDemoterRaceCleanUnderChurn runs the background demoter at full
// tilt against concurrent Compress/Decompress/Delete traffic. Its value
// doubles under -race in CI.
func TestDemoterRaceCleanUnderChurn(t *testing.T) {
	c := newClient(t, Config{
		Tiers:                 demoteTiers(),
		modeled:               true,
		DemotionInterval:      time.Millisecond,
		DemotionSliceSubTasks: 4,
	})
	const workers = 4
	const opsPer = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, int64(w))
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Compress(Task{Key: key, Data: data,
					DataType: "float", Distribution: "gamma"}); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Decompress(key); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := c.Delete(key); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCloseStopsPoolAndDemoter is the goroutine-leak gate: Close must
// stop the shared worker pool and the demotion loop, returning the
// process to its pre-client goroutine count.
func TestCloseStopsPoolAndDemoter(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	c, err := New(Config{
		Tiers:            demoteTiers(),
		modeled:          true,
		Parallelism:      4,
		DemotionInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 1)
	if _, err := c.Compress(Task{Key: "k", Data: data}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompressBatch([]Task{{Key: "b1", Data: data}, {Key: "b2", Data: data}}); err != nil {
		t.Fatal(err)
	}
	if during := runtime.NumGoroutine(); during <= before {
		t.Logf("note: no extra goroutines observed while open (%d vs %d)", during, before)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		buf := make([]byte, 1<<16)
		t.Errorf("%d goroutines alive after Close, started with %d\n%s",
			got, before, buf[:runtime.Stack(buf, true)])
	}
}
