package hcompress

import (
	"fmt"
	"testing"

	"hcompress/internal/stats"
)

// Seed allocs/op on the hot paths before the pooled data plane landed
// (measured with the same workload as TestHotPathAllocs: 1 MiB
// float/gamma buffers through a zero-value Config client).
const (
	seedCompressAllocs   = 71.0
	seedDecompressAllocs = 39.0
)

// TestHotPathAllocs gates the allocation-free data plane: the pooled
// buffer arena, codec scratch reuse, and plan cache together must cut
// steady-state allocs/op on both hot paths by at least 70% versus the
// seed baselines above.
func TestHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is slow under -short")
	}
	if raceEnabled {
		t.Skip("-race randomizes sync.Pool reuse; alloc accounting is meaningless")
	}
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 3)

	i := 0
	compAllocs := testing.AllocsPerRun(64, func() {
		key := fmt.Sprintf("k%d", i)
		i++
		if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(key); err != nil {
			t.Fatal(err)
		}
	})

	if _, err := c.Compress(Task{Key: "rb", Data: data}); err != nil {
		t.Fatal(err)
	}
	readAllocs := testing.AllocsPerRun(64, func() {
		r, err := c.Decompress("rb")
		if err != nil {
			t.Fatal(err)
		}
		r.Release()
	})

	t.Logf("compress+delete: %.1f allocs/op (seed %.1f)", compAllocs, seedCompressAllocs)
	t.Logf("decompress:      %.1f allocs/op (seed %.1f)", readAllocs, seedDecompressAllocs)
	if limit := 0.30 * seedCompressAllocs; compAllocs > limit {
		t.Errorf("compress+delete allocs/op = %.1f, want <= %.1f (70%% below the %.1f seed)",
			compAllocs, limit, seedCompressAllocs)
	}
	if limit := 0.30 * seedDecompressAllocs; readAllocs > limit {
		t.Errorf("decompress allocs/op = %.1f, want <= %.1f (70%% below the %.1f seed)",
			readAllocs, limit, seedDecompressAllocs)
	}
}

// BenchmarkClientReadBack measures the steady-state read path: one
// resident task decompressed repeatedly, with the arena buffer returned
// via Report.Release each iteration.
func BenchmarkClientReadBack(b *testing.B) {
	c, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 3)
	if _, err := c.Compress(Task{Key: "rb", Data: data}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Decompress("rb")
		if err != nil {
			b.Fatal(err)
		}
		r.Release()
	}
}
