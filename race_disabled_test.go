//go:build !race

package hcompress

const raceEnabled = false
