package hcompress

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/telemetry"
)

// This file is the client-side face of the telemetry subsystem
// (internal/telemetry): the public snapshot types, the per-operation
// trace spans and HCDP decision-audit records, and the Prometheus/expvar
// HTTP exposition. Everything here is inert unless the Config enabled
// telemetry — the registry, sink, and instrument handles are nil and
// every call site takes the nil fast path.

// TraceSpan is one node of one operation's span tree in the JSONL trace
// export. Every op emits a root span (stage "op") and children for each
// pipeline stage; fan-out sub-tasks additionally get per-sub-task
// queue/codec/retry/io leaves, so the whole latency anatomy of a
// request is reconstructible from its trace ID. Timestamps are
// virtual-clock seconds (the modeled timeline), never wall clocks, so a
// serial workload exports byte-identical traces regardless of the
// Parallelism setting.
//
// Span IDs are 1-based and assigned in emission order within the op;
// Parent is 0 on the root. The invariant tests pin: the codec, retry,
// and io leaf widths of a tree sum exactly to the root's width (queue
// leaves overlap them — they measure serial wait, not extra work; the
// analyze and plan stages are zero-width on the virtual timeline).
type TraceSpan struct {
	Record string `json:"record"`           // always "span"
	Trace  string `json:"trace,omitempty"`  // request/trace ID (propagated or shard-assigned)
	Span   int    `json:"span,omitempty"`   // span ID within the op, root = 1
	Parent int    `json:"parent,omitempty"` // parent span ID, 0 on the root
	Tenant string `json:"tenant,omitempty"` // from the service layer, when present
	Class  string `json:"class,omitempty"`  // scheduling class: "interactive" | "batch"
	Op     string `json:"op"`               // "compress" | "decompress"
	Key    string `json:"key"`
	// Stage is "op" (root) | "analyze" | "plan" | "replan" | "execute"
	// | "queue" | "codec" | "retry" | "io" | "cache" (a read served from
	// the decompressed-block cache: one zero-width leaf, no execute span
	// — the op never reached the store or the codec).
	Stage  string  `json:"stage"`
	Sub    int     `json:"sub,omitempty"` // 1-based sub-task index on queue/codec/retry/io leaves
	VStart float64 `json:"vstart"`
	VEnd   float64 `json:"vend"`
	// Analyze attributes.
	DataType     string `json:"type,omitempty"`
	Distribution string `json:"dist,omitempty"`
	Bytes        int64  `json:"bytes,omitempty"`
	// Plan attributes.
	SubTasks    int     `json:"subtasks,omitempty"`
	PredSeconds float64 `json:"predSecs,omitempty"`
	// Execute/io attributes (virtual-time anatomy).
	CodecSeconds float64 `json:"codecSecs,omitempty"`
	IOSeconds    float64 `json:"ioSecs,omitempty"`
	StoredBytes  int64   `json:"storedBytes,omitempty"`
	Tier         string  `json:"tier,omitempty"`        // io leaves: the tier that served the I/O
	PlannedTier  string  `json:"plannedTier,omitempty"` // io leaves: set only when the placement spilled
	Retries      int     `json:"retries,omitempty"`     // retry leaves: attempts absorbed
}

// jsonField starts one field inside an under-construction JSON object:
// a comma unless this is the first field, then the quoted key and colon.
// Keys are compile-time literals, never escaped.
func jsonField(dst []byte, key string) []byte {
	if dst[len(dst)-1] != '{' {
		dst = append(dst, ',')
	}
	dst = append(dst, '"')
	dst = append(dst, key...)
	return append(dst, '"', ':')
}

// AppendJSON encodes the span exactly as encoding/json would, field
// order and omitempty semantics included — the telemetry.Appender fast
// path that keeps per-operation tracing off the reflection walk.
func (s TraceSpan) AppendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	dst = telemetry.AppendJSONString(jsonField(dst, "record"), s.Record)
	if s.Trace != "" {
		dst = telemetry.AppendJSONString(jsonField(dst, "trace"), s.Trace)
	}
	if s.Span != 0 {
		dst = telemetry.AppendJSONInt(jsonField(dst, "span"), int64(s.Span))
	}
	if s.Parent != 0 {
		dst = telemetry.AppendJSONInt(jsonField(dst, "parent"), int64(s.Parent))
	}
	if s.Tenant != "" {
		dst = telemetry.AppendJSONString(jsonField(dst, "tenant"), s.Tenant)
	}
	if s.Class != "" {
		dst = telemetry.AppendJSONString(jsonField(dst, "class"), s.Class)
	}
	dst = telemetry.AppendJSONString(jsonField(dst, "op"), s.Op)
	dst = telemetry.AppendJSONString(jsonField(dst, "key"), s.Key)
	dst = telemetry.AppendJSONString(jsonField(dst, "stage"), s.Stage)
	if s.Sub != 0 {
		dst = telemetry.AppendJSONInt(jsonField(dst, "sub"), int64(s.Sub))
	}
	dst = telemetry.AppendJSONFloat(jsonField(dst, "vstart"), s.VStart)
	dst = telemetry.AppendJSONFloat(jsonField(dst, "vend"), s.VEnd)
	if s.DataType != "" {
		dst = telemetry.AppendJSONString(jsonField(dst, "type"), s.DataType)
	}
	if s.Distribution != "" {
		dst = telemetry.AppendJSONString(jsonField(dst, "dist"), s.Distribution)
	}
	if s.Bytes != 0 {
		dst = telemetry.AppendJSONInt(jsonField(dst, "bytes"), s.Bytes)
	}
	if s.SubTasks != 0 {
		dst = telemetry.AppendJSONInt(jsonField(dst, "subtasks"), int64(s.SubTasks))
	}
	if s.PredSeconds != 0 {
		dst = telemetry.AppendJSONFloat(jsonField(dst, "predSecs"), s.PredSeconds)
	}
	if s.CodecSeconds != 0 {
		dst = telemetry.AppendJSONFloat(jsonField(dst, "codecSecs"), s.CodecSeconds)
	}
	if s.IOSeconds != 0 {
		dst = telemetry.AppendJSONFloat(jsonField(dst, "ioSecs"), s.IOSeconds)
	}
	if s.StoredBytes != 0 {
		dst = telemetry.AppendJSONInt(jsonField(dst, "storedBytes"), s.StoredBytes)
	}
	if s.Tier != "" {
		dst = telemetry.AppendJSONString(jsonField(dst, "tier"), s.Tier)
	}
	if s.PlannedTier != "" {
		dst = telemetry.AppendJSONString(jsonField(dst, "plannedTier"), s.PlannedTier)
	}
	if s.Retries != 0 {
		dst = telemetry.AppendJSONInt(jsonField(dst, "retries"), int64(s.Retries))
	}
	return append(dst, '}')
}

// AuditRecord captures one HCDP decision and its outcome: the (codec,
// tier) pair the engine chose for a sub-task, the predicted compressed
// size and modeled duration behind that choice, and — after execution —
// the observed actuals with relative errors. This is the per-decision
// data behind the paper's prediction-accuracy (R²) claim.
type AuditRecord struct {
	Record string `json:"record"` // always "audit"
	Key    string `json:"key"`
	Sub    int    `json:"sub"` // sub-task index within the schema
	// The decision.
	PlannedTier string `json:"plannedTier"`
	Tier        string `json:"tier"` // actual tier (differs on spill)
	Codec       string `json:"codec"`
	// Predicted vs actual.
	OrigBytes    int64   `json:"origBytes"`
	PredBytes    int64   `json:"predBytes"`
	StoredBytes  int64   `json:"storedBytes"`
	PredSeconds  float64 `json:"predSecs"`
	CodecSeconds float64 `json:"codecSecs"`
	IOSeconds    float64 `json:"ioSecs"`
	// SizeErr is (stored-predicted)/predicted; TimeErr is
	// (actual-predicted)/predicted over the sub-task's total modeled
	// duration. Zero predictions yield zero errors.
	SizeErr float64 `json:"sizeErr"`
	TimeErr float64 `json:"timeErr"`
}

// AppendJSON encodes the audit record exactly as encoding/json would —
// the telemetry.Appender fast path (every field is unconditional, so
// this is a straight field walk).
func (a AuditRecord) AppendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	dst = telemetry.AppendJSONString(jsonField(dst, "record"), a.Record)
	dst = telemetry.AppendJSONString(jsonField(dst, "key"), a.Key)
	dst = telemetry.AppendJSONInt(jsonField(dst, "sub"), int64(a.Sub))
	dst = telemetry.AppendJSONString(jsonField(dst, "plannedTier"), a.PlannedTier)
	dst = telemetry.AppendJSONString(jsonField(dst, "tier"), a.Tier)
	dst = telemetry.AppendJSONString(jsonField(dst, "codec"), a.Codec)
	dst = telemetry.AppendJSONInt(jsonField(dst, "origBytes"), a.OrigBytes)
	dst = telemetry.AppendJSONInt(jsonField(dst, "predBytes"), a.PredBytes)
	dst = telemetry.AppendJSONInt(jsonField(dst, "storedBytes"), a.StoredBytes)
	dst = telemetry.AppendJSONFloat(jsonField(dst, "predSecs"), a.PredSeconds)
	dst = telemetry.AppendJSONFloat(jsonField(dst, "codecSecs"), a.CodecSeconds)
	dst = telemetry.AppendJSONFloat(jsonField(dst, "ioSecs"), a.IOSeconds)
	dst = telemetry.AppendJSONFloat(jsonField(dst, "sizeErr"), a.SizeErr)
	dst = telemetry.AppendJSONFloat(jsonField(dst, "timeErr"), a.TimeErr)
	return append(dst, '}')
}

// HistogramStat summarizes one histogram series in a MetricsSnapshot.
type HistogramStat struct {
	Count int64
	Sum   float64
	P50   float64
	P90   float64
	P99   float64
}

// MetricsSnapshot is the typed dump of every metric series, keyed by the
// canonical Prometheus series name (`name{label="value"}`). It is the
// test-friendly face of the registry; the same data is served in
// Prometheus text format on MetricsAddr and by Client.WriteMetrics.
type MetricsSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramStat
}

// Snapshot captures the current value of every metric. With telemetry
// off it returns empty (non-nil) maps.
func (c *Shard) Snapshot() MetricsSnapshot {
	s := c.tel.Snapshot()
	out := MetricsSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramStat, len(s.Histograms)),
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = HistogramStat{Count: h.Count, Sum: h.Sum, P50: h.P50, P90: h.P90, P99: h.P99}
	}
	return out
}

// WriteMetrics renders the Prometheus text-format exposition to w — the
// same bytes MetricsAddr serves on /metrics. A no-op with telemetry off.
func (c *Shard) WriteMetrics(w io.Writer) error {
	return c.tel.WritePrometheus(w)
}

// Audits drains the in-memory decision-audit ring: every HCDP choice
// recorded since the previous call, oldest first. Empty with telemetry
// off. The ring holds Config.AuditLogSize records (default 1024);
// overflow drops the oldest.
func (c *Shard) Audits() []AuditRecord {
	return c.audit.drain()
}

// MetricsAddr reports the bound address of the metrics listener (useful
// with Config.MetricsAddr ":0"), or "" when none is serving.
func (c *Shard) MetricsAddr() string {
	if c.metricsLn == nil {
		return ""
	}
	return c.metricsLn.Addr().String()
}

// FaultEvent records one tier health transition in the JSONL trace
// export and the in-memory ring: which tier moved between "healthy",
// "degraded", and "offline", when on the virtual timeline, and the
// error streak that drove it.
type FaultEvent struct {
	Record string  `json:"record"` // always "fault"
	Tier   string  `json:"tier"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	VTime  float64 `json:"vtime"`
	Streak int     `json:"streak,omitempty"`
}

// FaultEvents drains the in-memory health-transition ring: every tier
// state change recorded since the previous call, oldest first. Unlike
// the metrics registry this ring is always on — fault visibility must
// not depend on telemetry being enabled.
func (c *Shard) FaultEvents() []FaultEvent {
	c.faults.mu.Lock()
	defer c.faults.mu.Unlock()
	out := c.faults.ring
	c.faults.ring = nil
	return out
}

// faultLog is the bounded health-transition ring.
type faultLog struct {
	mu   sync.Mutex
	ring []FaultEvent
	cap  int
}

func (f *faultLog) append(ev FaultEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ring = append(f.ring, ev)
	if over := len(f.ring) - f.cap; over > 0 && f.cap > 0 {
		f.ring = append([]FaultEvent(nil), f.ring[over:]...)
	}
}

// onHealthEvent is the monitor's event sink: every health transition
// lands in the always-on ring and, when tracing, the JSONL sink.
func (c *Shard) onHealthEvent(ev monitor.Event) {
	fe := FaultEvent{
		Record: "fault",
		Tier:   ev.Name,
		From:   ev.From.String(),
		To:     ev.To.String(),
		VTime:  ev.VTime,
		Streak: ev.Streak,
	}
	c.faults.append(fe)
	if c.cache != nil {
		// A health flip changes the store's shape under the cache —
		// reads now replan around the transitioned tier — so the only
		// safe cache is an empty one. Pending fills are revoked too.
		c.cache.InvalidateAll()
	}
	c.sink.Emit(fe)
}

// SlowOpRecord is one sampled or threshold-crossing operation in the
// slow-op log: the full per-stage latency breakdown (analyze/plan in
// wall seconds; codec/io/retry in virtual seconds, io net of backoff)
// plus the HCDP audit records behind the op's placement. Records live
// in a bounded in-memory ring (Client.SlowOps, hctool -slow); they are
// not written to the trace sink because wall latencies would break the
// byte-identical replay contract.
type SlowOpRecord struct {
	Record         string        `json:"record"` // always "slowop"
	Trace          string        `json:"trace,omitempty"`
	Tenant         string        `json:"tenant,omitempty"`
	Class          string        `json:"class,omitempty"`
	Op             string        `json:"op"`
	Key            string        `json:"key"`
	WallSeconds    float64       `json:"wallSecs"`
	VirtualSeconds float64       `json:"virtualSecs"`
	AnalyzeSeconds float64       `json:"analyzeSecs,omitempty"` // wall
	PlanSeconds    float64       `json:"planSecs,omitempty"`    // wall
	CodecSeconds   float64       `json:"codecSecs"`             // virtual
	IOSeconds      float64       `json:"ioSecs"`                // virtual, net of retry backoff
	RetrySeconds   float64       `json:"retrySecs,omitempty"`   // virtual backoff
	Retries        int           `json:"retries,omitempty"`
	Replanned      bool          `json:"replanned,omitempty"`
	Degraded       bool          `json:"degraded,omitempty"`
	Audits         []AuditRecord `json:"audits,omitempty"`
}

// slowLog is the bounded slow-op ring with its threshold-or-sampled
// admission policy. nil (telemetry off or no policy configured) means
// every method no-ops.
type slowLog struct {
	thresh float64 // wall seconds; 0 disables the threshold arm
	every  uint64  // record every Nth op; 0 disables the sampling arm
	seq    atomic.Uint64
	mu     sync.Mutex
	ring   []SlowOpRecord
	cap    int
}

// shouldRecord rules on one completed op. The sampling counter advances
// on every call so "every Nth op" means Nth completed, not Nth slow.
func (s *slowLog) shouldRecord(wallSecs float64) bool {
	if s == nil {
		return false
	}
	n := s.seq.Add(1)
	if s.thresh > 0 && wallSecs >= s.thresh {
		return true
	}
	return s.every > 0 && n%s.every == 0
}

func (s *slowLog) append(rec SlowOpRecord) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring = append(s.ring, rec)
	if over := len(s.ring) - s.cap; over > 0 && s.cap > 0 {
		s.ring = append([]SlowOpRecord(nil), s.ring[over:]...)
	}
}

// SlowOps drains the slow-op ring: every threshold-crossing or sampled
// operation recorded since the previous call, oldest first. Empty
// unless Config.SlowOpThreshold or Config.SlowOpSampleEvery is set.
func (c *Shard) SlowOps() []SlowOpRecord {
	if c.slow == nil {
		return nil
	}
	c.slow.mu.Lock()
	defer c.slow.mu.Unlock()
	out := c.slow.ring
	c.slow.ring = nil
	return out
}

// slowOp assembles and records one slow-op entry from an executed op's
// Result and stage timings. Callers gate on slow.shouldRecord first.
func (c *Shard) slowOp(ri telemetry.ReqInfo, op, key string, res manager.Result, wallSecs, analyzeSecs, planSecs float64, replanned, degraded bool, audits []AuditRecord) {
	c.slow.append(SlowOpRecord{
		Record:         "slowop",
		Trace:          ri.ID,
		Tenant:         ri.Tenant,
		Class:          ri.Class,
		Op:             op,
		Key:            key,
		WallSeconds:    wallSecs,
		VirtualSeconds: res.CodecTime + res.IOTime,
		AnalyzeSeconds: analyzeSecs,
		PlanSeconds:    planSecs,
		CodecSeconds:   res.CodecTime,
		IOSeconds:      res.IOTime - res.RetrySecs,
		RetrySeconds:   res.RetrySecs,
		Retries:        res.Retries,
		Replanned:      replanned,
		Degraded:       degraded,
		Audits:         audits,
	})
}

// auditLog is the bounded decision-audit ring: a fixed circular buffer
// so steady-state appends never reallocate or shift — overflow just
// overwrites the oldest slot. (A naive slice-with-trim here cost a
// full-ring copy per operation once warm, which dominated telemetry
// overhead on the write path.)
type auditLog struct {
	mu    sync.Mutex
	buf   []AuditRecord
	start int // index of the oldest record
	size  int
	cap   int
}

func (a *auditLog) append(recs []AuditRecord) {
	if a.cap <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.buf == nil {
		a.buf = make([]AuditRecord, a.cap)
	}
	for i := range recs {
		if a.size == a.cap {
			a.buf[a.start] = recs[i]
			a.start = (a.start + 1) % a.cap
		} else {
			a.buf[(a.start+a.size)%a.cap] = recs[i]
			a.size++
		}
	}
}

// drain returns the buffered records oldest-first and empties the ring,
// releasing the backing array so an idle shard holds no audit memory.
func (a *auditLog) drain() []AuditRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.size == 0 {
		a.buf = nil
		a.start = 0
		return nil
	}
	out := make([]AuditRecord, a.size)
	n := copy(out, a.buf[a.start:min(a.start+a.size, a.cap)])
	copy(out[n:], a.buf[:a.size-n])
	a.buf, a.start, a.size = nil, 0, 0
	return out
}

// clientMetrics are the client-level instruments (nil when off).
type clientMetrics struct {
	opSeconds  map[string]*telemetry.Histogram // wall latency by op
	ops        map[string]*telemetry.Counter
	opErrs     map[string]*telemetry.Counter
	sizeRelErr *telemetry.Histogram // |stored-predicted|/predicted per sub-task
	timeRelErr *telemetry.Histogram
	replans    *telemetry.Counter
	// degradedWrites counts writes that fell back to uncompressed
	// storage after every compressing schema proved infeasible.
	degradedWrites *telemetry.Counter

	batchTasks    *telemetry.Histogram // tasks per batch call
	demoteSlices  *telemetry.Counter   // demotion slices executed
	demoteBytes   *telemetry.Counter   // bytes moved down by the demoter
	demoteSeconds *telemetry.Histogram // wall pause per demotion slice

	// stageSeconds is the latency-attribution family
	// hc_stage_seconds{stage=...}: analyze and plan observe wall seconds
	// at the shard, codec/io/retry observe per-op virtual seconds from
	// the manager's Result (io net of retry backoff). The queue stage of
	// the same family is registered and observed in the manager, at the
	// fanout wait site.
	stageAnalyze *telemetry.Histogram
	stagePlan    *telemetry.Histogram
	stageCodec   *telemetry.Histogram
	stageIO      *telemetry.Histogram
	stageRetry   *telemetry.Histogram
}

// observeStages folds one executed op's Result into the attribution
// histograms. All instruments no-op on nil, so this is free when
// telemetry is off.
func (cm *clientMetrics) observeStages(res manager.Result) {
	cm.stageCodec.Observe(res.CodecTime)
	cm.stageIO.Observe(res.IOTime - res.RetrySecs)
	cm.stageRetry.Observe(res.RetrySecs)
}

func newClientMetrics(reg *telemetry.Registry) clientMetrics {
	if reg == nil {
		return clientMetrics{}
	}
	cm := clientMetrics{
		opSeconds:      make(map[string]*telemetry.Histogram, 3),
		ops:            make(map[string]*telemetry.Counter, 3),
		opErrs:         make(map[string]*telemetry.Counter, 3),
		sizeRelErr:     reg.Histogram("hc_hcdp_size_relerr", "per-sub-task |stored-predicted|/predicted size error", telemetry.RelErrBuckets),
		timeRelErr:     reg.Histogram("hc_hcdp_time_relerr", "per-sub-task |actual-predicted|/predicted duration error", telemetry.RelErrBuckets),
		replans:        reg.Counter("hc_client_replans_total", "writes that replanned after a stale-capacity failure"),
		degradedWrites: reg.Counter("hc_degraded_writes_total", "writes stored uncompressed after every compressing schema failed"),

		batchTasks:    reg.Histogram("hc_client_batch_tasks", "tasks per CompressBatch/DecompressBatch call", telemetry.DepthBuckets),
		demoteSlices:  reg.Counter("hc_demoter_slices_total", "bounded demotion slices executed by the background demoter"),
		demoteBytes:   reg.Counter("hc_demoter_bytes_total", "bytes the background demoter moved down the hierarchy"),
		demoteSeconds: reg.Histogram("hc_demoter_slice_seconds", "wall-clock pause injected by one demotion slice", telemetry.SecondsBuckets),
	}
	for _, op := range []string{"compress", "decompress", "delete", "compress_batch", "decompress_batch"} {
		l := telemetry.L("op", op)
		cm.opSeconds[op] = reg.Histogram("hc_client_op_seconds", "wall-clock operation latency", telemetry.SecondsBuckets, l)
		cm.ops[op] = reg.Counter("hc_client_ops_total", "operations completed", l)
		cm.opErrs[op] = reg.Counter("hc_client_op_errors_total", "operations failed", l)
	}
	stage := func(name string) *telemetry.Histogram {
		return reg.Histogram("hc_stage_seconds", "per-stage latency attribution",
			telemetry.SecondsBuckets, telemetry.L("stage", name))
	}
	cm.stageAnalyze = stage("analyze")
	cm.stagePlan = stage("plan")
	cm.stageCodec = stage("codec")
	cm.stageIO = stage("io")
	cm.stageRetry = stage("retry")
	return cm
}

// spanTree builds one op's span tree in deterministic emission order:
// root, any zero-width marker children (analyze/plan/replan on writes),
// the execute span, then per sub-task leaves replaying the serial
// virtual timeline. Writes replay codec→retry→io per sub-task; reads
// retry→io→codec, mirroring the manager's placeTask/replayRead exactly
// — so the leaf widths reconstruct End-start to fp rounding.
func (c *Shard) spanTree(ri telemetry.ReqInfo, op, key string, res manager.Result, start float64, write bool, markers ...TraceSpan) []TraceSpan {
	spans := make([]TraceSpan, 0, 3+len(markers)+4*len(res.SubResults))
	next := 0
	add := func(s TraceSpan) int {
		next++
		s.Record, s.Span = "span", next
		s.Trace, s.Tenant, s.Class = ri.ID, ri.Tenant, ri.Class
		s.Op, s.Key = op, key
		spans = append(spans, s)
		return next
	}
	root := add(TraceSpan{Stage: "op", VStart: start, VEnd: res.End,
		CodecSeconds: res.CodecTime, IOSeconds: res.IOTime, StoredBytes: res.Stored})
	for _, m := range markers {
		m.Parent = root
		add(m)
	}
	exec := add(TraceSpan{Stage: "execute", Parent: root, VStart: start, VEnd: res.End})
	t := start
	for k, sr := range res.SubResults {
		sub := k + 1
		add(TraceSpan{Stage: "queue", Parent: exec, Sub: sub, VStart: start, VEnd: t})
		codecSpan := TraceSpan{Stage: "codec", Parent: exec, Sub: sub, CodecSeconds: sr.CodecTime}
		retrySpan := TraceSpan{Stage: "retry", Parent: exec, Sub: sub, Retries: sr.Retries}
		ioSpan := TraceSpan{Stage: "io", Parent: exec, Sub: sub,
			IOSeconds: sr.IOTime - sr.RetrySecs, StoredBytes: sr.Stored,
			Tier: c.hier.Tiers[sr.Tier].Name}
		if sr.PlannedTier != sr.Tier {
			ioSpan.PlannedTier = c.hier.Tiers[sr.PlannedTier].Name
		}
		place := func(s *TraceSpan, width float64) {
			s.VStart, s.VEnd = t, t+width
			t += width
		}
		if write {
			place(&codecSpan, sr.CodecTime)
			place(&retrySpan, sr.RetrySecs)
			place(&ioSpan, sr.IOTime-sr.RetrySecs)
			add(codecSpan)
			if sr.Retries > 0 {
				add(retrySpan)
			}
			add(ioSpan)
		} else {
			place(&retrySpan, sr.RetrySecs)
			place(&ioSpan, sr.IOTime-sr.RetrySecs)
			place(&codecSpan, sr.CodecTime)
			if sr.Retries > 0 {
				add(retrySpan)
			}
			add(ioSpan)
			add(codecSpan)
		}
	}
	return spans
}

// compressTrace builds the span tree and audit records for one executed
// write and hands them to the ring and the sink as one contiguous batch.
// replanned marks writes that went through the stale-capacity
// refresh+replan path; they get a zero-width "replan" marker span.
func (c *Shard) compressTrace(ri telemetry.ReqInfo, key string, attr analyzer.Result, size int64, schema core.Schema, res manager.Result, start float64, replanned bool) []AuditRecord {
	audits := make([]AuditRecord, 0, len(res.SubResults))
	for k, sr := range res.SubResults {
		rec := AuditRecord{
			Record:       "audit",
			Key:          key,
			Sub:          k,
			PlannedTier:  c.hier.Tiers[sr.PlannedTier].Name,
			Tier:         c.hier.Tiers[sr.Tier].Name,
			Codec:        codecName(sr.Codec),
			OrigBytes:    sr.OrigLen,
			PredBytes:    sr.PredStored,
			StoredBytes:  sr.Stored,
			PredSeconds:  sr.PredTime,
			CodecSeconds: sr.CodecTime,
			IOSeconds:    sr.IOTime,
		}
		if sr.PredStored > 0 {
			rec.SizeErr = float64(sr.Stored-sr.PredStored) / float64(sr.PredStored)
			c.cm.sizeRelErr.Observe(abs(rec.SizeErr))
		}
		if sr.PredTime > 0 {
			rec.TimeErr = (sr.CodecTime + sr.IOTime - sr.PredTime) / sr.PredTime
			c.cm.timeRelErr.Observe(abs(rec.TimeErr))
		}
		audits = append(audits, rec)
	}
	c.audit.append(audits)
	if c.sink == nil {
		return audits
	}
	markers := []TraceSpan{
		{Stage: "analyze", VStart: start, VEnd: start,
			DataType: attr.Type.String(), Distribution: attr.Dist.String(), Bytes: size},
		{Stage: "plan", VStart: start, VEnd: start,
			SubTasks: len(schema.SubTasks), PredSeconds: schema.PredTime},
	}
	if replanned {
		markers = append(markers, TraceSpan{Stage: "replan", VStart: start, VEnd: start})
	}
	spans := c.spanTree(ri, "compress", key, res, start, true, markers...)
	c.sink.EmitBatch(func(buf []byte) []byte {
		for i := range spans {
			buf = append(spans[i].AppendJSON(buf), '\n')
		}
		for i := range audits {
			buf = append(audits[i].AppendJSON(buf), '\n')
		}
		return buf
	})
	return audits
}

// decompressTrace emits the read-side span tree (reads have no analyze
// or plan stage and no decision to audit — the write-time schema
// governs; per-sub-task leaves replay retry→io→codec in serial order).
func (c *Shard) decompressTrace(ri telemetry.ReqInfo, key string, res manager.Result, start float64) {
	if c.sink == nil {
		return
	}
	spans := c.spanTree(ri, "decompress", key, res, start, false)
	c.sink.EmitBatch(func(buf []byte) []byte {
		for i := range spans {
			buf = append(spans[i].AppendJSON(buf), '\n')
		}
		return buf
	})
}

func codecName(id codec.ID) string {
	if cdc, err := codec.ByID(id); err == nil {
		return cdc.Name()
	}
	return "?"
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// startMetricsServer binds addr and serves /metrics (Prometheus text
// format) and /debug/vars (expvar) until Close. With profiling enabled
// the net/http/pprof handlers mount under /debug/pprof/.
func (c *Shard) startMetricsServer(addr string, profiling bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("hcompress: metrics listener: %w", err)
	}
	goroutines := c.tel.Gauge("hc_goroutines", "goroutines alive in the process at scrape time")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// The registry has no callback gauges, so process-level readings
		// are refreshed at scrape time.
		goroutines.Set(float64(runtime.NumGoroutine()))
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.tel.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	c.metricsLn, c.metricsSrv = ln, srv
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// expvar integration: one process-wide "hcompress" var aggregates the
// snapshot of every live telemetry-enabled client, keyed client0,
// client1, ... in creation order. Publish happens once (expvar panics on
// duplicate names); Close unregisters the client from the aggregate.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarRegs = make(map[uint64]*telemetry.Registry)
	expvarSeq  uint64
)

func expvarRegister(reg *telemetry.Registry) uint64 {
	expvarOnce.Do(func() {
		if expvar.Get("hcompress") != nil {
			return
		}
		expvar.Publish("hcompress", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			out := make(map[string]telemetry.Snapshot, len(expvarRegs))
			for id, r := range expvarRegs {
				out[fmt.Sprintf("client%d", id)] = r.Snapshot()
			}
			return out
		}))
	})
	expvarMu.Lock()
	defer expvarMu.Unlock()
	expvarSeq++
	expvarRegs[expvarSeq] = reg
	return expvarSeq
}

func expvarUnregister(id uint64) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	delete(expvarRegs, id)
}
