package hcompress

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/telemetry"
)

// This file is the client-side face of the telemetry subsystem
// (internal/telemetry): the public snapshot types, the per-operation
// trace spans and HCDP decision-audit records, and the Prometheus/expvar
// HTTP exposition. Everything here is inert unless the Config enabled
// telemetry — the registry, sink, and instrument handles are nil and
// every call site takes the nil fast path.

// TraceSpan is one stage of one operation in the JSONL trace export.
// Timestamps are virtual-clock seconds (the modeled timeline), never
// wall clocks, so a serial workload exports byte-identical traces
// regardless of the Parallelism setting.
type TraceSpan struct {
	Record string  `json:"record"` // always "span"
	Op     string  `json:"op"`     // "compress" | "decompress"
	Key    string  `json:"key"`
	Stage  string  `json:"stage"` // "analyze" | "plan" | "execute"
	VStart float64 `json:"vstart"`
	VEnd   float64 `json:"vend"`
	// Analyze attributes.
	DataType     string `json:"type,omitempty"`
	Distribution string `json:"dist,omitempty"`
	Bytes        int64  `json:"bytes,omitempty"`
	// Plan attributes.
	SubTasks    int     `json:"subtasks,omitempty"`
	PredSeconds float64 `json:"predSecs,omitempty"`
	// Execute attributes (virtual-time anatomy).
	CodecSeconds float64 `json:"codecSecs,omitempty"`
	IOSeconds    float64 `json:"ioSecs,omitempty"`
	StoredBytes  int64   `json:"storedBytes,omitempty"`
}

// AuditRecord captures one HCDP decision and its outcome: the (codec,
// tier) pair the engine chose for a sub-task, the predicted compressed
// size and modeled duration behind that choice, and — after execution —
// the observed actuals with relative errors. This is the per-decision
// data behind the paper's prediction-accuracy (R²) claim.
type AuditRecord struct {
	Record string `json:"record"` // always "audit"
	Key    string `json:"key"`
	Sub    int    `json:"sub"` // sub-task index within the schema
	// The decision.
	PlannedTier string `json:"plannedTier"`
	Tier        string `json:"tier"` // actual tier (differs on spill)
	Codec       string `json:"codec"`
	// Predicted vs actual.
	OrigBytes    int64   `json:"origBytes"`
	PredBytes    int64   `json:"predBytes"`
	StoredBytes  int64   `json:"storedBytes"`
	PredSeconds  float64 `json:"predSecs"`
	CodecSeconds float64 `json:"codecSecs"`
	IOSeconds    float64 `json:"ioSecs"`
	// SizeErr is (stored-predicted)/predicted; TimeErr is
	// (actual-predicted)/predicted over the sub-task's total modeled
	// duration. Zero predictions yield zero errors.
	SizeErr float64 `json:"sizeErr"`
	TimeErr float64 `json:"timeErr"`
}

// HistogramStat summarizes one histogram series in a MetricsSnapshot.
type HistogramStat struct {
	Count int64
	Sum   float64
	P50   float64
	P90   float64
	P99   float64
}

// MetricsSnapshot is the typed dump of every metric series, keyed by the
// canonical Prometheus series name (`name{label="value"}`). It is the
// test-friendly face of the registry; the same data is served in
// Prometheus text format on MetricsAddr and by Client.WriteMetrics.
type MetricsSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramStat
}

// Snapshot captures the current value of every metric. With telemetry
// off it returns empty (non-nil) maps.
func (c *Shard) Snapshot() MetricsSnapshot {
	s := c.tel.Snapshot()
	out := MetricsSnapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramStat, len(s.Histograms)),
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = HistogramStat{Count: h.Count, Sum: h.Sum, P50: h.P50, P90: h.P90, P99: h.P99}
	}
	return out
}

// WriteMetrics renders the Prometheus text-format exposition to w — the
// same bytes MetricsAddr serves on /metrics. A no-op with telemetry off.
func (c *Shard) WriteMetrics(w io.Writer) error {
	return c.tel.WritePrometheus(w)
}

// Audits drains the in-memory decision-audit ring: every HCDP choice
// recorded since the previous call, oldest first. Empty with telemetry
// off. The ring holds Config.AuditLogSize records (default 1024);
// overflow drops the oldest.
func (c *Shard) Audits() []AuditRecord {
	c.audit.mu.Lock()
	defer c.audit.mu.Unlock()
	out := c.audit.ring
	c.audit.ring = nil
	return out
}

// MetricsAddr reports the bound address of the metrics listener (useful
// with Config.MetricsAddr ":0"), or "" when none is serving.
func (c *Shard) MetricsAddr() string {
	if c.metricsLn == nil {
		return ""
	}
	return c.metricsLn.Addr().String()
}

// FaultEvent records one tier health transition in the JSONL trace
// export and the in-memory ring: which tier moved between "healthy",
// "degraded", and "offline", when on the virtual timeline, and the
// error streak that drove it.
type FaultEvent struct {
	Record string  `json:"record"` // always "fault"
	Tier   string  `json:"tier"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	VTime  float64 `json:"vtime"`
	Streak int     `json:"streak,omitempty"`
}

// FaultEvents drains the in-memory health-transition ring: every tier
// state change recorded since the previous call, oldest first. Unlike
// the metrics registry this ring is always on — fault visibility must
// not depend on telemetry being enabled.
func (c *Shard) FaultEvents() []FaultEvent {
	c.faults.mu.Lock()
	defer c.faults.mu.Unlock()
	out := c.faults.ring
	c.faults.ring = nil
	return out
}

// faultLog is the bounded health-transition ring.
type faultLog struct {
	mu   sync.Mutex
	ring []FaultEvent
	cap  int
}

func (f *faultLog) append(ev FaultEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ring = append(f.ring, ev)
	if over := len(f.ring) - f.cap; over > 0 && f.cap > 0 {
		f.ring = append([]FaultEvent(nil), f.ring[over:]...)
	}
}

// onHealthEvent is the monitor's event sink: every health transition
// lands in the always-on ring and, when tracing, the JSONL sink.
func (c *Shard) onHealthEvent(ev monitor.Event) {
	fe := FaultEvent{
		Record: "fault",
		Tier:   ev.Name,
		From:   ev.From.String(),
		To:     ev.To.String(),
		VTime:  ev.VTime,
		Streak: ev.Streak,
	}
	c.faults.append(fe)
	c.sink.Emit(fe)
}

// auditLog is the bounded decision-audit ring.
type auditLog struct {
	mu   sync.Mutex
	ring []AuditRecord
	cap  int
}

func (a *auditLog) append(recs []AuditRecord) {
	if a.cap <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ring = append(a.ring, recs...)
	if over := len(a.ring) - a.cap; over > 0 {
		a.ring = append([]AuditRecord(nil), a.ring[over:]...)
	}
}

// clientMetrics are the client-level instruments (nil when off).
type clientMetrics struct {
	opSeconds  map[string]*telemetry.Histogram // wall latency by op
	ops        map[string]*telemetry.Counter
	opErrs     map[string]*telemetry.Counter
	sizeRelErr *telemetry.Histogram // |stored-predicted|/predicted per sub-task
	timeRelErr *telemetry.Histogram
	replans    *telemetry.Counter
	// degradedWrites counts writes that fell back to uncompressed
	// storage after every compressing schema proved infeasible.
	degradedWrites *telemetry.Counter

	batchTasks    *telemetry.Histogram // tasks per batch call
	demoteSlices  *telemetry.Counter   // demotion slices executed
	demoteBytes   *telemetry.Counter   // bytes moved down by the demoter
	demoteSeconds *telemetry.Histogram // wall pause per demotion slice
}

func newClientMetrics(reg *telemetry.Registry) clientMetrics {
	if reg == nil {
		return clientMetrics{}
	}
	cm := clientMetrics{
		opSeconds:      make(map[string]*telemetry.Histogram, 3),
		ops:            make(map[string]*telemetry.Counter, 3),
		opErrs:         make(map[string]*telemetry.Counter, 3),
		sizeRelErr:     reg.Histogram("hc_hcdp_size_relerr", "per-sub-task |stored-predicted|/predicted size error", telemetry.RelErrBuckets),
		timeRelErr:     reg.Histogram("hc_hcdp_time_relerr", "per-sub-task |actual-predicted|/predicted duration error", telemetry.RelErrBuckets),
		replans:        reg.Counter("hc_client_replans_total", "writes that replanned after a stale-capacity failure"),
		degradedWrites: reg.Counter("hc_degraded_writes_total", "writes stored uncompressed after every compressing schema failed"),

		batchTasks:    reg.Histogram("hc_client_batch_tasks", "tasks per CompressBatch/DecompressBatch call", telemetry.DepthBuckets),
		demoteSlices:  reg.Counter("hc_demoter_slices_total", "bounded demotion slices executed by the background demoter"),
		demoteBytes:   reg.Counter("hc_demoter_bytes_total", "bytes the background demoter moved down the hierarchy"),
		demoteSeconds: reg.Histogram("hc_demoter_slice_seconds", "wall-clock pause injected by one demotion slice", telemetry.SecondsBuckets),
	}
	for _, op := range []string{"compress", "decompress", "delete", "compress_batch", "decompress_batch"} {
		l := telemetry.L("op", op)
		cm.opSeconds[op] = reg.Histogram("hc_client_op_seconds", "wall-clock operation latency", telemetry.SecondsBuckets, l)
		cm.ops[op] = reg.Counter("hc_client_ops_total", "operations completed", l)
		cm.opErrs[op] = reg.Counter("hc_client_op_errors_total", "operations failed", l)
	}
	return cm
}

// compressTrace builds the spans and audit records for one executed
// write and hands them to the ring and the sink as one contiguous batch.
func (c *Shard) compressTrace(key string, attr analyzer.Result, size int64, schema core.Schema, res manager.Result, start float64) {
	audits := make([]AuditRecord, 0, len(res.SubResults))
	for k, sr := range res.SubResults {
		rec := AuditRecord{
			Record:       "audit",
			Key:          key,
			Sub:          k,
			PlannedTier:  c.hier.Tiers[sr.PlannedTier].Name,
			Tier:         c.hier.Tiers[sr.Tier].Name,
			Codec:        codecName(sr.Codec),
			OrigBytes:    sr.OrigLen,
			PredBytes:    sr.PredStored,
			StoredBytes:  sr.Stored,
			PredSeconds:  sr.PredTime,
			CodecSeconds: sr.CodecTime,
			IOSeconds:    sr.IOTime,
		}
		if sr.PredStored > 0 {
			rec.SizeErr = float64(sr.Stored-sr.PredStored) / float64(sr.PredStored)
			c.cm.sizeRelErr.Observe(abs(rec.SizeErr))
		}
		if sr.PredTime > 0 {
			rec.TimeErr = (sr.CodecTime + sr.IOTime - sr.PredTime) / sr.PredTime
			c.cm.timeRelErr.Observe(abs(rec.TimeErr))
		}
		audits = append(audits, rec)
	}
	c.audit.append(audits)
	if c.sink == nil {
		return
	}
	records := make([]any, 0, 3+len(audits))
	records = append(records,
		TraceSpan{Record: "span", Op: "compress", Key: key, Stage: "analyze",
			VStart: start, VEnd: start,
			DataType: attr.Type.String(), Distribution: attr.Dist.String(), Bytes: size},
		TraceSpan{Record: "span", Op: "compress", Key: key, Stage: "plan",
			VStart: start, VEnd: start,
			SubTasks: len(schema.SubTasks), PredSeconds: schema.PredTime},
		TraceSpan{Record: "span", Op: "compress", Key: key, Stage: "execute",
			VStart: start, VEnd: res.End,
			CodecSeconds: res.CodecTime, IOSeconds: res.IOTime, StoredBytes: res.Stored},
	)
	for i := range audits {
		records = append(records, audits[i])
	}
	c.sink.Emit(records...)
}

// decompressTrace emits the read-side execute span (reads have no plan
// stage and no decision to audit — the write-time schema governs).
func (c *Shard) decompressTrace(key string, res manager.Result, start float64) {
	if c.sink == nil {
		return
	}
	c.sink.Emit(TraceSpan{Record: "span", Op: "decompress", Key: key, Stage: "execute",
		VStart: start, VEnd: res.End,
		CodecSeconds: res.CodecTime, IOSeconds: res.IOTime, StoredBytes: res.Stored})
}

func codecName(id codec.ID) string {
	if cdc, err := codec.ByID(id); err == nil {
		return cdc.Name()
	}
	return "?"
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// startMetricsServer binds addr and serves /metrics (Prometheus text
// format) and /debug/vars (expvar) until Close.
func (c *Shard) startMetricsServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("hcompress: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.tel.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	c.metricsLn, c.metricsSrv = ln, srv
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// expvar integration: one process-wide "hcompress" var aggregates the
// snapshot of every live telemetry-enabled client, keyed client0,
// client1, ... in creation order. Publish happens once (expvar panics on
// duplicate names); Close unregisters the client from the aggregate.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarRegs = make(map[uint64]*telemetry.Registry)
	expvarSeq  uint64
)

func expvarRegister(reg *telemetry.Registry) uint64 {
	expvarOnce.Do(func() {
		if expvar.Get("hcompress") != nil {
			return
		}
		expvar.Publish("hcompress", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			out := make(map[string]telemetry.Snapshot, len(expvarRegs))
			for id, r := range expvarRegs {
				out[fmt.Sprintf("client%d", id)] = r.Snapshot()
			}
			return out
		}))
	})
	expvarMu.Lock()
	defer expvarMu.Unlock()
	expvarSeq++
	expvarRegs[expvarSeq] = reg
	return expvarSeq
}

func expvarUnregister(id uint64) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	delete(expvarRegs, id)
}
