package hcompress

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hcompress/internal/analyzer"
	"hcompress/internal/bufpool"
	"hcompress/internal/core"
	"hcompress/internal/manager"
	"hcompress/internal/readcache"
	"hcompress/internal/stats"
	"hcompress/internal/telemetry"
)

// batchGroupKey identifies one HCDP planning equivalence class within a
// batch: tasks with the same analyzed type, distribution, and size get
// the same schema, so the engine is consulted once per group.
type batchGroupKey struct {
	typ  stats.DataType
	dist stats.Dist
	size int64
}

// CompressBatch writes many tasks as one schedule. All tasks are
// analyzed up front (fanned across the shared worker pool), grouped by
// analyzed {type, distribution, size} so the HCDP engine plans once per
// group instead of once per task, and every sub-task of the batch is
// submitted to the pool as a single job — one submission, one
// directory pass, one virtual-clock round-trip for the whole burst.
//
// Tasks fail independently: the returned slice has one report per task
// in input order, nil where that task failed, and the error joins every
// per-task failure (each naming its task). Virtual timelines start at
// the same clock reading for every task — exactly as the same tasks
// issued concurrently through Compress would — and the clock advances to
// the latest completion.
func (c *Shard) CompressBatch(tasks []Task) ([]*Report, error) {
	return c.CompressBatchContext(context.Background(), tasks)
}

// CompressBatchContext is CompressBatch under a context: cancellation
// fails tasks that have not been placed yet with ctx.Err() (each named
// in the joined error); tasks already placed keep their reports.
func (c *Shard) CompressBatchContext(ctx context.Context, tasks []Task) ([]*Report, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var wall time.Time
	if c.tel != nil {
		wall = time.Now()
	}
	reps := make([]*Report, len(tasks))
	errs := make([]error, len(tasks))
	attrs := make([]analyzer.Result, len(tasks))
	for i := range tasks {
		if tasks[i].Key == "" {
			errs[i] = fmt.Errorf("hcompress: task %d: task key required", i)
		} else if len(tasks[i].Data) == 0 {
			errs[i] = fmt.Errorf("hcompress: task %d (%q): empty task data", i, tasks[i].Key)
		}
	}

	// Stage 1: analyze every task up front. No lock held; the scans fan
	// across the shared pool like codec work.
	_ = c.pool.Run(len(tasks), func(_ *bufpool.Scratch, i int) error {
		if errs[i] == nil {
			attrs[i] = c.attrFor(tasks[i])
		}
		return nil
	})

	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	start := c.clock.Now()

	// Stage 2: plan once per {type, dist, size} group. A group leader's
	// planning failure marks only that task; the next member retries.
	schemas := make(map[batchGroupKey]core.Schema, len(tasks))
	reqs := make([]manager.WriteReq, 0, len(tasks))
	reqIdx := make([]int, 0, len(tasks))
	for i := range tasks {
		if errs[i] != nil {
			continue
		}
		size := int64(len(tasks[i].Data))
		gk := batchGroupKey{typ: attrs[i].Type, dist: attrs[i].Dist, size: size}
		schema, ok := schemas[gk]
		if !ok {
			var err error
			schema, err = c.eng.Plan(start, attrs[i], size)
			if err != nil {
				errs[i] = fmt.Errorf("hcompress: planning %q: %w", tasks[i].Key, err)
				continue
			}
			schemas[gk] = schema
		}
		reqs = append(reqs, manager.WriteReq{
			Key: tasks[i].Key, Data: tasks[i].Data, Size: size,
			Attr: attrs[i], Schema: schema,
		})
		reqIdx = append(reqIdx, i)
	}

	// Stage 3: execute the whole batch as one pool schedule.
	results, rerrs := c.mgr.ExecuteWriteBatchCtx(ctx, start, reqs)
	maxEnd := start
	var ri telemetry.ReqInfo
	if c.tel != nil {
		// One identity per batch call: every task's span tree shares the
		// propagated (or synthesized) trace ID, so the whole burst is
		// groupable as one request.
		ri = c.reqInfo(ctx)
	}
	for r := range reqs {
		i := reqIdx[r]
		res := results[r]
		var degraded *DegradedError
		replanned := false
		if rerrs[r] != nil {
			if cerr := ctx.Err(); cerr != nil {
				errs[i] = fmt.Errorf("hcompress: %q: %w", tasks[i].Key, cerr)
				continue
			}
			// The monitor's view may have been stale; refresh and replan
			// this task once, then degrade to an uncompressed write on
			// any healthy tier — mirroring Compress.
			c.mon.ForceRefresh()
			c.cm.replans.Inc()
			replanned = true
			err2 := rerrs[r]
			if schema2, perr := c.eng.Plan(start, attrs[i], reqs[r].Size); perr == nil {
				res, err2 = c.mgr.ExecuteWriteCtx(ctx, start, reqs[r].Key, reqs[r].Data, reqs[r].Size, attrs[i], schema2)
				if err2 == nil {
					reqs[r].Schema = schema2
				}
			}
			if err2 != nil {
				schema2 := degradedSchema(reqs[r].Size)
				var derr error
				res, derr = c.mgr.ExecuteWriteCtx(ctx, start, reqs[r].Key, reqs[r].Data, reqs[r].Size, attrs[i], schema2)
				if derr != nil {
					errs[i] = fmt.Errorf("hcompress: executing %q: %w", tasks[i].Key, err2)
					continue
				}
				reqs[r].Schema = schema2
				degraded = &DegradedError{
					Key:   tasks[i].Key,
					Tier:  c.hier.Tiers[res.SubResults[0].Tier].Name,
					Cause: err2,
				}
				c.cm.degradedWrites.Inc()
			}
		}
		if res.End > maxEnd {
			maxEnd = res.End
		}
		rep := c.report(tasks[i].Key, reqs[r].Size, attrs[i], res, start)
		rep.PredictedSeconds = reqs[r].Schema.PredTime
		rep.Degraded = degraded
		reps[i] = rep
		if c.cache != nil {
			// Strict invalidation on overwrite: the placement above made any
			// cached payload for this key stale.
			c.cache.Invalidate(tasks[i].Key)
		}
		if c.tel != nil {
			c.cm.observeStages(res)
			c.compressTrace(ri, tasks[i].Key, attrs[i], reqs[r].Size, reqs[r].Schema, res, start, replanned)
		}
	}
	c.clock.AdvanceTo(maxEnd)
	if c.tel != nil {
		c.cm.batchTasks.Observe(float64(len(tasks)))
		c.cm.ops["compress_batch"].Inc()
		c.cm.opSeconds["compress_batch"].Observe(time.Since(wall).Seconds())
		for i := range errs {
			if errs[i] != nil {
				c.cm.opErrs["compress_batch"].Inc()
			}
		}
	}
	return reps, errors.Join(errs...)
}

// DecompressBatch reads many tasks as one schedule: one directory pass
// captures every task's metadata and every sub-task of the batch is
// decompressed through a single pool submission. Like CompressBatch,
// tasks fail independently, reports come back in input order (nil on
// failure), and all timelines start at the same clock reading.
func (c *Shard) DecompressBatch(keys []string) ([]*Report, error) {
	return c.DecompressBatchContext(context.Background(), keys)
}

// DecompressBatchContext is DecompressBatch under a context:
// cancellation fails unfinished reads with ctx.Err() (each named in the
// joined error) and releases every pinned payload.
func (c *Shard) DecompressBatchContext(ctx context.Context, keys []string) ([]*Report, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var wall time.Time
	if c.tel != nil {
		wall = time.Now()
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return nil, ErrClosed
	}
	reps := make([]*Report, len(keys))
	errs := make([]error, len(keys))
	sizes := make([]int64, len(keys))
	attrs := make([]analyzer.Result, len(keys))
	var ri telemetry.ReqInfo
	if c.tel != nil {
		ri = c.reqInfo(ctx)
	}

	// Cache hits short-circuit before grouping: a hit never enters the
	// manager's directory pass or the pool schedule, so a fully warm
	// batch performs no store work at all. Only the misses go on to the
	// batch read below (opening their fill tokens first, same ordering
	// discipline as the single-op path).
	var fills []*readcache.Fill
	if c.cache != nil {
		fills = make([]*readcache.Fill, len(keys))
		for i, key := range keys {
			if rep, meta, ok := c.cacheGet(key); ok {
				reps[i] = rep
				if c.tel != nil {
					c.cacheHitTrace(ri, key, meta)
				}
			}
		}
		c.kickPrefetch()
	}
	missKeys := make([]string, 0, len(keys))
	missIdx := make([]int, 0, len(keys))
	for i, key := range keys {
		if reps[i] != nil {
			continue
		}
		size, attr, ok := c.mgr.TaskInfo(key)
		if !ok {
			errs[i] = fmt.Errorf("hcompress: unknown task %q: %w", key, ErrNotFound)
			continue
		}
		sizes[i], attrs[i] = size, attr
		if c.cache != nil {
			fills[i] = c.cache.BeginFill(key)
		}
		missKeys = append(missKeys, key)
		missIdx = append(missIdx, i)
	}

	start := c.clock.Now()
	results, rerrs := c.mgr.ExecuteReadBatchCtx(ctx, start, missKeys)
	maxEnd := start
	for j, i := range missIdx {
		if rerrs[j] != nil {
			errs[i] = rerrs[j]
			if fills != nil && fills[i] != nil {
				c.cache.Abort(fills[i], false)
			}
			continue
		}
		res := results[j]
		if res.End > maxEnd {
			maxEnd = res.End
		}
		rep := c.report(keys[i], sizes[i], attrs[i], res, start)
		rep.Data = res.Data
		if fills != nil && fills[i] != nil {
			if release, ok := c.cache.Commit(fills[i], res.Data, readcache.Meta{
				Size: sizes[i], Stored: res.Stored,
				DataType: rep.DataType, Distribution: rep.Distribution,
			}); ok {
				rep.release = release
			}
		}
		reps[i] = rep
		if c.tel != nil {
			c.cm.observeStages(res)
			c.decompressTrace(ri, keys[i], res, start)
		}
	}
	c.clock.AdvanceTo(maxEnd)
	if c.tel != nil {
		c.cm.batchTasks.Observe(float64(len(keys)))
		c.cm.ops["decompress_batch"].Inc()
		c.cm.opSeconds["decompress_batch"].Observe(time.Since(wall).Seconds())
		for i := range errs {
			if errs[i] != nil {
				c.cm.opErrs["decompress_batch"].Inc()
			}
		}
	}
	return reps, errors.Join(errs...)
}
