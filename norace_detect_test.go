//go:build !race

package hcompress

// raceDetectorEnabled is false without -race; see race_detect_test.go.
const raceDetectorEnabled = false
