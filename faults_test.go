package hcompress

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// faultTiers is a two-tier hierarchy small enough that plans are cheap
// but big enough that nothing spills for capacity reasons — every spill
// in these tests is fault-driven.
func faultTiers() []TierSpec {
	return []TierSpec{
		{Name: "ram", CapacityBytes: 256 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4},
		{Name: "pfs", CapacityBytes: 64 << 30, LatencySec: 5e-3, BandwidthBps: 100e6, Lanes: 4},
	}
}

func faultPayload(n int) []byte {
	return []byte(strings.Repeat("fault tolerant tiered storage payload. ", n))
}

// TestWriteSurvivesTransientBlip: a transient fault on the fast tier is
// retried with backoff and, when the window outlives every attempt,
// spilled past — the write succeeds either way and the retry counter
// moved. (The backoff-escapes-the-window case is asserted with exact
// virtual arithmetic in internal/manager; here the window never closes
// so the outcome is deterministic under wall-measured codec times.)
func TestWriteSurvivesTransientBlip(t *testing.T) {
	c := newClient(t, Config{
		Tiers:           faultTiers(),
		EnableTelemetry: true,
		FaultInjector: &FaultInjector{Windows: []FaultWindow{
			{Tier: "ram", StartSec: 0, Mode: FaultTransient},
		}},
	})
	data := faultPayload(5000)
	rep, err := c.Compress(Task{Key: "k", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != nil {
		t.Fatalf("transient blip must not degrade the write: %v", rep.Degraded)
	}
	back, err := c.Decompress("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, data) {
		t.Fatal("round-trip mismatch")
	}
	snap := c.Snapshot()
	if snap.Counters["hc_retries_total"] == 0 {
		t.Fatalf("expected transient retries, counters: %v", snap.Counters)
	}
}

// TestWritesSurviveStickyTierDeath: with the fast tier dead for good,
// every write still succeeds (spill chain), the health machine takes the
// tier offline after the error streak, and later plans never target it.
func TestWritesSurviveStickyTierDeath(t *testing.T) {
	c := newClient(t, Config{
		Tiers:           faultTiers(),
		EnableTelemetry: true,
		FaultInjector: &FaultInjector{Windows: []FaultWindow{
			{Tier: "ram", StartSec: 0, Mode: FaultOutage}, // never closes
		}},
	})
	data := faultPayload(5000)
	for i := 0; i < 6; i++ {
		rep, err := c.Compress(Task{Key: fmt.Sprintf("k%d", i), Data: data})
		if err != nil {
			t.Fatalf("write %d under single-tier outage must succeed: %v", i, err)
		}
		for _, st := range rep.SubTasks {
			if st.Tier == "ram" {
				t.Fatalf("write %d placed a sub-task on the dead tier", i)
			}
		}
	}
	// The error streak crossed the offline threshold long ago.
	h := c.Health()
	if h[0].Name != "ram" || h[0].State != "offline" {
		t.Fatalf("ram should be offline: %+v", h)
	}
	if h[1].State != "healthy" {
		t.Fatalf("pfs should be healthy: %+v", h)
	}
	// Status folds the same machine state into its rows.
	sts := c.Status()
	if sts[0].Health != "offline" || sts[0].ConsecutiveErrors < 3 {
		t.Fatalf("status health row: %+v", sts[0])
	}
	if g := c.Snapshot().Gauges[`hc_tier_health{tier="ram"}`]; g != 2 {
		t.Fatalf("hc_tier_health{tier=ram} = %v, want 2 (offline)", g)
	}
	// Everything written during the outage reads back intact.
	for i := 0; i < 6; i++ {
		back, err := c.Decompress(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back.Data, data) {
			t.Fatalf("read %d mismatch", i)
		}
	}
}

// TestTierRecoveryViaProbe: a tier that dies and comes back is probed
// after the probe interval and re-enters placement; the fault-event log
// records the full offline→healthy arc.
func TestTierRecoveryViaProbe(t *testing.T) {
	c := newClient(t, Config{
		Tiers:           faultTiers(),
		EnableTelemetry: true,
		FaultInjector: &FaultInjector{Windows: []FaultWindow{
			{Tier: "ram", StartSec: 0, EndSec: 2, Mode: FaultOutage},
		}},
	})
	data := faultPayload(5000)
	for i := 0; i < 4; i++ {
		if _, err := c.Compress(Task{Key: fmt.Sprintf("k%d", i), Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Health()[0].State != "offline" {
		t.Fatalf("ram should be offline: %+v", c.Health())
	}
	// Step the virtual clock past the outage window and the probe time.
	c.Advance(5)
	rep, err := c.Compress(Task{Key: "after", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != nil {
		t.Fatalf("recovered write must not degrade: %v", rep.Degraded)
	}
	if c.Health()[0].State != "healthy" {
		t.Fatalf("probe success must heal ram: %+v", c.Health())
	}
	// The healed tier is planned onto again.
	rep2, err := c.Compress(Task{Key: "after2", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	onRAM := false
	for _, st := range append(rep.SubTasks, rep2.SubTasks...) {
		if st.Tier == "ram" {
			onRAM = true
		}
	}
	if !onRAM {
		t.Fatal("recovered ram never reused by placement")
	}
	// The audit trail shows the arc: degraded → offline → healthy.
	var states []string
	for _, ev := range c.FaultEvents() {
		if ev.Tier == "ram" {
			states = append(states, ev.To)
		}
	}
	want := []string{"degraded", "offline", "healthy"}
	if len(states) != len(want) {
		t.Fatalf("fault events %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("fault events %v, want %v", states, want)
		}
	}
}

// TestCorruptedReadIsDetected: bit flips served by the store are caught
// by the sub-task CRC and surface as ErrCorrupted; the media is intact
// so reads outside the window still verify.
func TestCorruptedReadIsDetected(t *testing.T) {
	c := newClient(t, Config{
		Tiers: faultTiers(),
		FaultInjector: &FaultInjector{Windows: []FaultWindow{
			{Tier: "ram", StartSec: 1, EndSec: 10, Mode: FaultCorrupt},
			{Tier: "pfs", StartSec: 1, EndSec: 10, Mode: FaultCorrupt},
		}},
	})
	data := faultPayload(5000)
	if _, err := c.Compress(Task{Key: "k", Data: data}); err != nil {
		t.Fatal(err)
	}
	c.Advance(2) // into the corruption window
	if _, err := c.Decompress("k"); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("want ErrCorrupted, got %v", err)
	}
	c.Advance(10) // past it: the stored bytes were never harmed
	back, err := c.Decompress("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, data) {
		t.Fatal("post-window round-trip mismatch")
	}
}

// TestDegradedWriteWhenNoCompressingPlan: capacity lies make every tier
// look full, so no compressing schema is feasible — the write degrades
// to uncompressed-on-any-tier, succeeds, and reads back intact.
func TestDegradedWriteWhenNoCompressingPlan(t *testing.T) {
	c := newClient(t, Config{
		Tiers:           faultTiers(),
		EnableTelemetry: true,
		FaultInjector: &FaultInjector{Windows: []FaultWindow{
			{Tier: "ram", StartSec: 0, Mode: FaultCapacityLie, CapacityFraction: 0},
			{Tier: "pfs", StartSec: 0, Mode: FaultCapacityLie, CapacityFraction: 0},
		}},
	})
	data := faultPayload(5000)
	rep, err := c.Compress(Task{Key: "k", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded == nil {
		t.Fatal("write with every tier reported full must be degraded")
	}
	if !errors.Is(rep.Degraded, ErrDegraded) {
		t.Fatalf("Degraded must match ErrDegraded: %v", rep.Degraded)
	}
	if rep.Degraded.Key != "k" || rep.Degraded.Tier == "" {
		t.Fatalf("degraded detail: %+v", rep.Degraded)
	}
	if len(rep.SubTasks) != 1 || rep.SubTasks[0].Codec != "none" {
		t.Fatalf("degraded write must store uncompressed: %+v", rep.SubTasks)
	}
	if c.Snapshot().Counters["hc_degraded_writes_total"] == 0 {
		t.Fatal("hc_degraded_writes_total must count the degraded write")
	}
	back, err := c.Decompress("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, data) {
		t.Fatal("degraded round-trip mismatch")
	}
}

// TestBatchSurvivesStickyTierDeath: the batch path has the same
// availability story as Compress — a dead tier never fails a batch task.
func TestBatchSurvivesStickyTierDeath(t *testing.T) {
	c := newClient(t, Config{
		Tiers: faultTiers(),
		FaultInjector: &FaultInjector{Windows: []FaultWindow{
			{Tier: "ram", StartSec: 0, Mode: FaultOutage},
		}},
	})
	data := faultPayload(2000)
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Key: fmt.Sprintf("b%d", i), Data: data}
	}
	reps, err := c.CompressBatch(tasks)
	if err != nil {
		t.Fatalf("batch under single-tier outage must succeed: %v", err)
	}
	keys := make([]string, len(tasks))
	for i := range tasks {
		if reps[i] == nil {
			t.Fatalf("task %d has no report", i)
		}
		keys[i] = tasks[i].Key
	}
	backs, err := c.DecompressBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range backs {
		if !bytes.Equal(backs[i].Data, data) {
			t.Fatalf("batch read %d mismatch", i)
		}
	}
}

// TestContextCancellation: cancelled contexts surface ctx.Err() from
// every context-aware entry point, leave no partial task behind, and a
// storm of cancellations leaks no goroutines.
func TestContextCancellation(t *testing.T) {
	c := newClient(t, Config{Tiers: faultTiers()})
	data := faultPayload(2000)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := c.CompressContext(cancelled, Task{Key: "k", Data: data}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompressContext: want context.Canceled, got %v", err)
	}
	if _, err := c.Decompress("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancelled write must leave no task: %v", err)
	}
	if _, err := c.DecompressContext(cancelled, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecompressContext: want context.Canceled, got %v", err)
	}
	if _, err := c.CompressBatchContext(cancelled, []Task{{Key: "b", Data: data}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompressBatchContext: want context.Canceled, got %v", err)
	}
	if _, err := c.DecompressBatchContext(cancelled, []string{"b"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecompressBatchContext: want context.Canceled, got %v", err)
	}

	// Cancellation storm: contexts cancelled concurrently with the work.
	// Each call either completes or returns the context error; either way
	// the worker pool must drain — no goroutine may leak.
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { cancel(); close(done) }()
		key := fmt.Sprintf("storm%d", i)
		if _, err := c.CompressContext(ctx, Task{Key: key, Data: data}); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("storm %d: %v", i, err)
			}
		} else if _, err := c.DecompressContext(ctx, key); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrNotFound) {
			t.Fatalf("storm read %d: %v", i, err)
		}
		<-done
	}
	// Goroutine counts settle asynchronously; poll briefly.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutine leak after cancellation storm: %d -> %d", before, after)
	}
	// The client is still fully functional.
	if _, err := c.Compress(Task{Key: "final", Data: data}); err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress("final")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, data) {
		t.Fatal("post-storm round-trip mismatch")
	}
}

// TestTypedErrorTaxonomy: the exported sentinels match errors from the
// public API across layers.
func TestTypedErrorTaxonomy(t *testing.T) {
	c := newClient(t, Config{Tiers: faultTiers()})
	if _, err := c.Decompress("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown key: want ErrNotFound, got %v", err)
	}
	if err := c.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete unknown: want ErrNotFound, got %v", err)
	}
	// DegradedError unwraps to its cause and matches ErrDegraded.
	cause := fmt.Errorf("root: %w", ErrNoCapacity)
	derr := &DegradedError{Key: "k", Tier: "pfs", Cause: cause}
	if !errors.Is(derr, ErrDegraded) || !errors.Is(derr, ErrNoCapacity) {
		t.Fatalf("DegradedError taxonomy: %v", derr)
	}
	var target *DegradedError
	if !errors.As(fmt.Errorf("wrap: %w", derr), &target) || target.Tier != "pfs" {
		t.Fatalf("errors.As(DegradedError): %v", target)
	}
}

// TestInvalidFaultWindowRejected: bad scripts fail fast at New.
func TestInvalidFaultWindowRejected(t *testing.T) {
	_, err := New(Config{Tiers: faultTiers(), FaultInjector: &FaultInjector{
		Windows: []FaultWindow{{Tier: "tape", Mode: FaultOutage}},
	}})
	if err == nil || !strings.Contains(err.Error(), "unknown tier") {
		t.Fatalf("unknown tier must be rejected: %v", err)
	}
	_, err = New(Config{Tiers: faultTiers(), FaultInjector: &FaultInjector{
		Windows: []FaultWindow{{Tier: "ram", Mode: FaultCapacityLie, CapacityFraction: 1.5}},
	}})
	if err == nil {
		t.Fatal("out-of-range CapacityFraction must be rejected")
	}
}
