package hcompress

import (
	"fmt"

	"hcompress/internal/fault"
	"hcompress/internal/tier"
)

// FaultMode selects what a fault window does to its target tier.
type FaultMode int

const (
	// FaultOutage fails every operation in the window with the sticky
	// ErrTierOffline: the device is gone until the window closes.
	FaultOutage FaultMode = iota
	// FaultTransient fails operations (all keys, or the Rate-selected
	// fraction) with a retryable error; a retry whose backoff carries it
	// past the window end succeeds.
	FaultTransient
	// FaultLatency adds ExtraLatencySec virtual seconds to every
	// operation on the tier.
	FaultLatency
	// FaultCorrupt returns bit-flipped payload copies for reads of the
	// Rate-selected fraction of keys; writes are untouched and the stored
	// bytes stay intact (CRC verification catches the flip).
	FaultCorrupt
	// FaultCapacityLie scales the tier's reported capacity by
	// CapacityFraction in System Monitor snapshots — the planner sees a
	// smaller (even full) tier while the device's true capacity is
	// unchanged.
	FaultCapacityLie
)

// FaultWindow scripts one fault: a mode active on one named tier for a
// span of the virtual timeline. Windows are deterministic — the same
// schedule replayed over the same operations produces the same failures
// — which is what makes fault scenarios assertable in tests and CI.
type FaultWindow struct {
	// Tier names the target tier (must match a Config.Tiers name).
	Tier string
	// StartSec and EndSec bound the window in virtual seconds,
	// [StartSec, EndSec). EndSec <= 0 means the window never closes.
	StartSec, EndSec float64
	// Mode selects the fault behaviour.
	Mode FaultMode
	// Rate, for FaultTransient and FaultCorrupt, selects the affected
	// fraction of keys in (0, 1); zero or >= 1 affects every key. Key
	// selection is a pure hash, stable across runs and orderings.
	Rate float64
	// ExtraLatencySec is FaultLatency's added virtual seconds per
	// operation.
	ExtraLatencySec float64
	// CapacityFraction is FaultCapacityLie's reported-capacity
	// multiplier in [0, 1); zero reports an (apparently) full tier.
	CapacityFraction float64
	// Seed salts per-key selection so distinct windows pick distinct
	// key subsets.
	Seed uint64
}

// FaultInjector is the public fault-injection knob: a script of windows
// applied to the store's operations. Attach one via Config.FaultInjector;
// hcbench -faults builds one internally.
type FaultInjector struct {
	Windows []FaultWindow
}

// schedule compiles the public script into the store-level injector,
// resolving tier names against the hierarchy.
func (f *FaultInjector) schedule(h tier.Hierarchy) (*fault.Schedule, error) {
	idx := make(map[string]int, h.Len())
	for i, spec := range h.Tiers {
		idx[spec.Name] = i
	}
	s := &fault.Schedule{Windows: make([]fault.Window, 0, len(f.Windows))}
	for i, w := range f.Windows {
		ti, ok := idx[w.Tier]
		if !ok {
			return nil, fmt.Errorf("hcompress: fault window %d: unknown tier %q", i, w.Tier)
		}
		var mode fault.Mode
		switch w.Mode {
		case FaultOutage:
			mode = fault.Outage
		case FaultTransient:
			mode = fault.Transient
		case FaultLatency:
			mode = fault.LatencySpike
		case FaultCorrupt:
			mode = fault.CorruptReads
		case FaultCapacityLie:
			mode = fault.CapacityLie
		default:
			return nil, fmt.Errorf("hcompress: fault window %d: unknown mode %d", i, w.Mode)
		}
		if w.Rate < 0 || w.CapacityFraction < 0 || w.CapacityFraction >= 1 && w.Mode == FaultCapacityLie {
			return nil, fmt.Errorf("hcompress: fault window %d: rate/fraction out of range", i)
		}
		s.Windows = append(s.Windows, fault.Window{
			Tier: ti, Start: w.StartSec, End: w.EndSec, Mode: mode,
			Rate: w.Rate, Extra: w.ExtraLatencySec, CapFraction: w.CapacityFraction,
			Seed: w.Seed,
		})
	}
	return s, nil
}
