package hcompress

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out. Each
// figure bench executes the corresponding experiment harness at a reduced
// scale and reports domain metrics (task throughput, speedup) alongside
// ns/op; run `go test -bench=. -benchmem` or use cmd/hcbench for the
// full tables.

import (
	"io"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"hcompress/internal/analyzer"
	"hcompress/internal/codec"
	"hcompress/internal/core"
	"hcompress/internal/experiments"
	"hcompress/internal/manager"
	"hcompress/internal/monitor"
	"hcompress/internal/predictor"
	"hcompress/internal/seed"
	"hcompress/internal/stats"
	"hcompress/internal/store"
	"hcompress/internal/tier"
)

const benchScale = 256 // divide paper scale in benches; hcbench runs bigger

func BenchmarkFig1Motivation(b *testing.B) {
	o := experiments.PaperFig1(benchScale)
	o.Timesteps = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1Motivation(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Anatomy(b *testing.B) {
	o := experiments.Fig3Options{Tasks: 32, TaskSize: 1 << 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Anatomy(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aHCDPEngine(b *testing.B) {
	o := experiments.Fig4aOptions{Plans: 2048}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4aEngine(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4bCCP(b *testing.B) {
	o := experiments.Fig4bOptions{Tasks: 1024, TaskSize: 1 << 20, PerturbFrac: 0.25}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4bCCP(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5CompressionOnTiering(b *testing.B) {
	o := experiments.PaperFig5(benchScale)
	o.TasksPerRank = 64
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5CompressionOnTiering(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6TieringOnCompression(b *testing.B) {
	o := experiments.PaperFig6(benchScale)
	o.TasksPerRank = 32
	o.Codecs = []string{"pithy", "snappy", "brotli", "bsc"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6TieringOnCompression(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7VPIC(b *testing.B) {
	o := experiments.PaperFig7(benchScale)
	o.Ranks = []int{2560}
	o.Timesteps = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7VPIC(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Workflow(b *testing.B) {
	o := experiments.PaperFig8(benchScale)
	o.Ranks = []int{2560}
	o.Timesteps = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8Workflow(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Priorities covers Table II: planning cost under each
// priority preset (the presets themselves are exercised for correctness in
// the unit tests and the priorities example).
func BenchmarkTable2Priorities(b *testing.B) {
	for _, pr := range []struct {
		name string
		w    seed.Weights
	}{
		{"async", seed.WeightsAsync},
		{"archival", seed.WeightsArchival},
		{"read-after-write", seed.WeightsReadAfterWrite},
		{"equal", seed.WeightsEqual},
	} {
		b.Run(pr.name, func(b *testing.B) {
			h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
			st, _ := store.New(h, false)
			eng, err := core.New(predictor.New(seed.Builtin(h)), monitor.New(st, 1e9),
				core.Config{Weights: pr.w})
			if err != nil {
				b.Fatal(err)
			}
			attr := analyzer.Result{Type: stats.TypeInt, Dist: stats.Gamma}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Plan(0, attr, 1<<20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablations (DESIGN.md §5) ---

// BenchmarkAblationMemo measures the DP memoization claim: with the memo
// the amortized planning cost is near-constant; without it every plan
// re-runs the Match/Place recursion.
func BenchmarkAblationMemo(b *testing.B) {
	for _, memo := range []bool{true, false} {
		name := "memo-on"
		if !memo {
			name = "memo-off"
		}
		b.Run(name, func(b *testing.B) {
			h := tier.Ares(8*tier.MB, 32*tier.MB, 128*tier.MB, tier.TB)
			st, _ := store.New(h, false)
			eng, err := core.New(predictor.New(seed.Builtin(h)), monitor.New(st, 1e9),
				core.Config{Weights: seed.WeightsEqual, DisableMemo: !memo})
			if err != nil {
				b.Fatal(err)
			}
			attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Plan(0, attr, 64<<20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAlignment measures the 4096-byte sub-task alignment
// choice: coarser quanta reduce DP states, finer quanta increase them.
// (The production engine fixes Align = 4096; this bench varies the task
// size granularity instead, which controls memo reuse the same way.)
func BenchmarkAblationAlignment(b *testing.B) {
	h := tier.Ares(8*tier.MB, 32*tier.MB, 128*tier.MB, tier.TB)
	st, _ := store.New(h, false)
	eng, err := core.New(predictor.New(seed.Builtin(h)), monitor.New(st, 1e9),
		core.Config{Weights: seed.WeightsEqual})
	if err != nil {
		b.Fatal(err)
	}
	attr := analyzer.Result{Type: stats.TypeFloat, Dist: stats.Gamma}
	for _, spread := range []int{1, 64, 4096} {
		b.Run("distinct-sizes-"+strconv.Itoa(spread), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// spread distinct task sizes; aligned quantization
				// collapses nearby sizes onto shared sub-problems.
				size := int64(4<<20 + (i%spread)*core.Align)
				if _, err := eng.Plan(0, attr, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPlaceOrder contrasts compress-then-place (HCompress)
// with Hermes's place-then-compress under capacity pressure: the metric of
// interest is the reported makespan, surfaced via b.ReportMetric.
func BenchmarkAblationPlaceOrder(b *testing.B) {
	// Keep the paper's 128 tasks/rank: the data volume must exceed the
	// fast tiers or placement order cannot matter.
	o := experiments.PaperFig5(benchScale)
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Fig5CompressionOnTiering(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var hc, zlib float64
			for _, row := range tb.Rows {
				var t float64
				if _, err := fmtSscan(row[6], &t); err != nil {
					continue
				}
				switch row[0] {
				case "HCompress":
					hc = t
				case "zlib":
					zlib = t
				}
			}
			if hc > 0 {
				b.ReportMetric(zlib/hc, "place-order-speedup")
			}
		}
	}
}

// BenchmarkAblationFeedback measures CCP accuracy with and without the
// reinforcement feedback loop under a mis-seeded model.
func BenchmarkAblationFeedback(b *testing.B) {
	for _, fb := range []bool{true, false} {
		name := "feedback-on"
		if !fb {
			name = "feedback-off"
		}
		b.Run(name, func(b *testing.B) {
			h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
			truth := seed.Builtin(h)
			var lastAcc float64
			for i := 0; i < b.N; i++ {
				wrong := seed.Builtin(h)
				for k, c := range wrong.Costs {
					c.CompressMBps *= 1.5
					c.Ratio = 1 + (c.Ratio-1)*0.6
					wrong.Costs[k] = c
				}
				wrong.FeedbackInterval = 32
				ccp := predictor.New(wrong)
				oracle := manager.ModelOracle{Truth: truth}
				for task := 0; task < 512; task++ {
					hdr := manager.Header{Offset: int64(task) * 4096, Length: 1 << 20}
					cdc := mustCodec(b, "snappy")
					_, stored, secs, err := oracle.Compress(
						nil, analyzer.Result{Type: stats.TypeInt, Dist: stats.Gamma}, cdc, nil, 1<<20, hdr)
					if err != nil {
						b.Fatal(err)
					}
					if fb {
						ccp.Feedback(stats.TypeInt, stats.Gamma, "snappy", seed.CodecCost{
							CompressMBps: 1.0 / secs,
							Ratio:        float64(int64(1<<20)) / float64(stored),
						})
					}
				}
				ccp.Flush()
				// Accuracy of the final model against truth.
				pred, _ := ccp.Predict(stats.TypeInt, stats.Gamma, "snappy")
				want, _ := truth.Lookup(stats.TypeInt, stats.Gamma, "snappy")
				err := pred.CompressMBps/want.CompressMBps - 1
				if err < 0 {
					err = -err
				}
				lastAcc = 1 - err
			}
			b.ReportMetric(lastAcc*100, "final-accuracy-%")
		})
	}
}

// BenchmarkAblationLoadAware measures the optional queue-backlog term.
func BenchmarkAblationLoadAware(b *testing.B) {
	for _, la := range []bool{false, true} {
		name := "load-blind"
		if la {
			name = "load-aware"
		}
		b.Run(name, func(b *testing.B) {
			h := tier.Ares(tier.GB, tier.GB, tier.GB, tier.TB)
			st, _ := store.New(h, false)
			eng, err := core.New(predictor.New(seed.Builtin(h)), monitor.New(st, 0),
				core.Config{Weights: seed.WeightsEqual, LoadAware: la})
			if err != nil {
				b.Fatal(err)
			}
			attr := analyzer.Result{Type: stats.TypeInt, Dist: stats.Gamma}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Plan(float64(i)*1e-5, attr, 1<<20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClientWrite measures the end-to-end public API on real data.
func BenchmarkClientWrite(b *testing.B) {
	for _, class := range []struct {
		name string
		dt   stats.DataType
	}{{"text", stats.TypeText}, {"float", stats.TypeFloat}, {"int", stats.TypeInt}} {
		b.Run(class.name, func(b *testing.B) {
			c, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			data := stats.GenBuffer(class.dt, stats.Gamma, 1<<20, 3)
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				key := "bench-" + strconv.Itoa(i)
				if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
					b.Fatal(err)
				}
				if err := c.Delete(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClientParallel measures concurrent write+read+delete cycles
// through a single shared Client with b.RunParallel. Under the seed's
// global pipeline lock this could not scale past 1x; the staged pipeline
// (lock-free analysis, RW-locked planner memo, per-tier store locks)
// lets independent tasks overlap their codec work. Compare against
// BenchmarkClientWrite, or run with -cpu 1,2,8 to see scaling.
func BenchmarkClientParallel(b *testing.B) {
	benchClientParallel(b, Config{})
}

// BenchmarkClientParallelTelemetry is the telemetry overhead gate: same
// workload as BenchmarkClientParallel but with the metrics registry on.
// The instruments are atomics handed out at construction, so the delta
// against the plain benchmark should stay within noise (<5%).
func BenchmarkClientParallelTelemetry(b *testing.B) {
	benchClientParallel(b, Config{EnableTelemetry: true})
}

// BenchmarkClientParallelFullObs measures the complete observability
// stack under load: metrics registry, span-tree export (to a discarded
// writer), stage-attribution histograms, and threshold+sampled slow-op
// logging. Compare against BenchmarkClientParallel for the total
// tracing overhead; TestObservabilityOverheadGate enforces the bound.
func BenchmarkClientParallelFullObs(b *testing.B) {
	benchClientParallel(b, Config{
		EnableTelemetry:   true,
		TraceWriter:       io.Discard,
		SlowOpThreshold:   50 * time.Millisecond,
		SlowOpSampleEvery: 32,
	})
}

func benchClientParallel(b *testing.B, cfg Config) {
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 1<<20, 3)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var worker int64
	b.RunParallel(func(pb *testing.PB) {
		id := atomic.AddInt64(&worker, 1)
		i := 0
		for pb.Next() {
			key := "par-" + strconv.FormatInt(id, 10) + "-" + strconv.Itoa(i)
			if _, err := c.Compress(Task{Key: key, Data: data}); err != nil {
				b.Fatal(err)
			}
			if _, err := c.Decompress(key); err != nil {
				b.Fatal(err)
			}
			if err := c.Delete(key); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func fmtSscan(s string, v *float64) (int, error) {
	var err error
	*v, err = strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func mustCodec(b *testing.B, name string) codec.Codec {
	b.Helper()
	c, err := codec.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkAblationDrain contrasts Fig. 7 with and without asynchronous
// draining during compute windows, reporting the HC makespan ratio.
func BenchmarkAblationDrain(b *testing.B) {
	// Drain is wired into the experiment harness; the ablation compares
	// against zero-length compute windows (drain has no window to run in).
	base := experiments.PaperFig7(benchScale)
	base.Ranks = []int{2560}
	base.Timesteps = 4
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Fig7VPIC(base)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range tb.Rows {
				if row[1] == "HC" {
					var t float64
					if _, err := fmtSscan(row[2], &t); err == nil {
						b.ReportMetric(t, "hc-makespan-s")
					}
				}
			}
		}
	}
}
