package hcompress

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hcompress/internal/stats"
)

// throughputWriters is the concurrency level the acceptance gate and the
// benchmark both run at: 8 concurrent clients sharing one library handle.
const throughputWriters = 8

// runWriteLoad drives total writes (plus deletes, to keep occupancy
// flat) across throughputWriters goroutines and returns ops/second.
// batch <= 1 issues per-op Compress calls; batch > 1 groups writes into
// CompressBatch calls of that size.
func runWriteLoad(tb testing.TB, c *Client, data []byte, total, batch int) float64 {
	tb.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	startAll := time.Now()
	for w := 0; w < throughputWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if batch <= 1 {
					i := next.Add(1) - 1
					if i >= int64(total) {
						return
					}
					key := fmt.Sprintf("w%d-%d", w, i)
					if _, err := c.Compress(Task{Key: key, Data: data,
						DataType: "float", Distribution: "gamma"}); err != nil {
						tb.Error(err)
						return
					}
					if err := c.Delete(key); err != nil {
						tb.Error(err)
						return
					}
				} else {
					lo := next.Add(int64(batch)) - int64(batch)
					if lo >= int64(total) {
						return
					}
					hi := lo + int64(batch)
					if hi > int64(total) {
						hi = int64(total)
					}
					tasks := make([]Task, 0, hi-lo)
					for i := lo; i < hi; i++ {
						tasks = append(tasks, Task{Key: fmt.Sprintf("w%d-%d", w, i),
							Data: data, DataType: "float", Distribution: "gamma"})
					}
					if _, err := c.CompressBatch(tasks); err != nil {
						tb.Error(err)
						return
					}
					for i := range tasks {
						if err := c.Delete(tasks[i].Key); err != nil {
							tb.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(total) / time.Since(startAll).Seconds()
}

// BenchmarkClientThroughput is the throughput engine's gate benchmark:
// 8 concurrent clients writing 256 KiB tasks through one handle while
// the background demoter runs, per-op vs batched submission. Compare
// the two sub-benchmarks' ops/s (and MB/s via the byte rate).
func BenchmarkClientThroughput(b *testing.B) {
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 256<<10, 3)
	for _, mode := range []struct {
		name  string
		batch int
	}{{"PerOp", 1}, {"Batched16", 16}} {
		b.Run(mode.name, func(b *testing.B) {
			c, err := New(Config{DemotionInterval: 5 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			ops := runWriteLoad(b, c, data, b.N, mode.batch)
			b.ReportMetric(ops, "ops/s")
		})
	}
}

// TestBatchThroughputGate enforces the ISSUE 4 acceptance bar: batched
// submission must reach at least 1.5x the per-op ops/s at 8 concurrent
// clients. It runs in modeled mode with full type/distribution hints and
// small tasks, so the per-task work is dominated by exactly the overhead
// batching amortizes (planning, clock round-trips, lock traffic) rather
// than by codec CPU that is identical in both modes.
func TestBatchThroughputGate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is meaningless under -short")
	}
	if raceEnabled {
		t.Skip("-race serializes everything; throughput ratios are meaningless")
	}
	c := newClient(t, Config{modeled: true})
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 64<<10, 3)
	const total = 4000
	runWriteLoad(t, c, data, 500, 1) // warm caches and models
	perOp := runWriteLoad(t, c, data, total, 1)
	batched := runWriteLoad(t, c, data, total, 16)
	ratio := batched / perOp
	t.Logf("per-op %.0f ops/s, batched %.0f ops/s: %.2fx", perOp, batched, ratio)
	if ratio < 1.5 {
		t.Errorf("batched submission is %.2fx per-op ops/s, want >= 1.5x", ratio)
	}
}

// writeP99 measures the p99 wall latency of single-op writes under the
// gate's standard concurrency.
func writeP99(tb testing.TB, c *Client, data []byte, total int) time.Duration {
	tb.Helper()
	lats := make([]time.Duration, total)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < throughputWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				key := fmt.Sprintf("p%d-%d", w, i)
				op := time.Now()
				if _, err := c.Compress(Task{Key: key, Data: data,
					DataType: "float", Distribution: "gamma"}); err != nil {
					tb.Error(err)
					return
				}
				lats[i] = time.Since(op)
				if err := c.Delete(key); err != nil {
					tb.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[total*99/100]
}

// TestDemotionLatencyGate enforces the second ISSUE 4 acceptance bar:
// running the background demoter concurrently must degrade write p99
// latency by less than 20% (plus a small absolute allowance for CI
// timer noise — demotion slices are bounded, so the injected pauses are
// microseconds, far below the allowance).
func TestDemotionLatencyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement is meaningless under -short")
	}
	if raceEnabled {
		t.Skip("-race distorts latency; the gate is meaningless")
	}
	data := stats.GenBuffer(stats.TypeFloat, stats.Gamma, 256<<10, 3)
	const total = 1200

	run := func(interval time.Duration) time.Duration {
		c := newClient(t, Config{
			Tiers:                 demoteTiers(),
			DemotionInterval:      interval,
			DemotionSliceSubTasks: 8,
		})
		writeP99(t, c, data, 200) // warm-up
		return writeP99(t, c, data, total)
	}
	off := run(0)
	on := run(time.Millisecond)
	t.Logf("write p99: demotion off %v, demotion on %v", off, on)
	limit := off + off/5 + 2*time.Millisecond
	if on > limit {
		t.Errorf("write p99 with demotion on = %v, want <= %v (off %v + 20%% + 2ms)", on, limit, off)
	}
}
