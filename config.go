package hcompress

import (
	"fmt"
	"io"
	"time"

	"hcompress/internal/seed"
	"hcompress/internal/telemetry"
	"hcompress/internal/tier"
)

// TierSpec describes one storage tier, fastest-first. It mirrors the
// information the paper says "is provided by the user" (bandwidth, device
// location, interface), extended with the tier's payload backend and its
// dollar pricing.
type TierSpec struct {
	// Name identifies the tier (e.g. "ram", "nvme", "burstbuffer", "pfs").
	Name string
	// CapacityBytes is the usable capacity of the tier.
	CapacityBytes int64
	// LatencySec is the per-operation access latency in seconds.
	LatencySec float64
	// BandwidthBps is the aggregate tier bandwidth in bytes/second.
	BandwidthBps float64
	// Lanes is the tier's hardware concurrency (devices x channels).
	Lanes int
	// Backend selects the tier's payload plane: "" or "mem" keeps
	// payloads in process memory (the default, byte-identical to
	// previous releases), "file" journals them into append-only segment
	// files under Config.DataDir and survives a crash, "cloud" models an
	// object store with $-cost metering.
	Backend string
	// CostPerGBMonth prices keeping one GB resident on this tier for a
	// month; EgressCostPerGB prices reading one GB out. Both feed the
	// cloud backend's cost meter and, weighted by Priorities.Cost, the
	// placement objective. Zero keeps the tier free.
	CostPerGBMonth  float64
	EgressCostPerGB float64
}

// spec is the single conversion point between the public TierSpec and
// the internal tier.Spec — every field crosses here and nowhere else.
func (s TierSpec) spec() tier.Spec {
	return tier.Spec{
		Name:            s.Name,
		Capacity:        s.CapacityBytes,
		Latency:         s.LatencySec,
		Bandwidth:       s.BandwidthBps,
		Lanes:           s.Lanes,
		Backend:         s.Backend,
		CostPerGBMonth:  s.CostPerGBMonth,
		EgressCostPerGB: s.EgressCostPerGB,
	}
}

// Priorities are the application's compression priorities (Table II of the
// paper): the relative weight of compression speed, decompression speed,
// and compression ratio in the placement cost function. They need not sum
// to one; they are normalized internally.
type Priorities struct {
	CompressionSpeed   float64
	DecompressionSpeed float64
	Ratio              float64
	// Cost weighs the dollar price of placement (per-tier $/GB-month +
	// egress) against the three time-based terms. Zero — the default —
	// keeps the planner's arithmetic bit-identical to a purely
	// time-based objective; a positive weight steers placement toward
	// cheap tiers.
	Cost float64
}

// Priority presets from Table II.
var (
	// PriorityAsync suits asynchronous I/O: only the compression stall
	// is on the critical path.
	PriorityAsync = Priorities{CompressionSpeed: 1}
	// PriorityArchival suits archival I/O: ratio is everything.
	PriorityArchival = Priorities{Ratio: 1}
	// PriorityReadAfterWrite suits producer/consumer workflows.
	PriorityReadAfterWrite = Priorities{CompressionSpeed: 0.3, DecompressionSpeed: 0.3, Ratio: 0.4}
	// PriorityEqual weighs all three metrics evenly (the evaluation
	// default in the paper).
	PriorityEqual = Priorities{CompressionSpeed: 1, DecompressionSpeed: 1, Ratio: 1}
)

func (p Priorities) toWeights() seed.Weights {
	return seed.Weights{
		Compression:   p.CompressionSpeed,
		Decompression: p.DecompressionSpeed,
		Ratio:         p.Ratio,
		Cost:          p.Cost,
	}.Normalize()
}

// Config configures a Client. The zero value is usable: a laptop-scale
// four-tier hierarchy, equal priorities, and the builtin cost seed.
type Config struct {
	// Tiers is the storage hierarchy, fastest-first. Default: a scaled
	// Ares-like hierarchy (256 MiB RAM / 1 GiB NVMe / 4 GiB BB / 64 GiB
	// PFS) suitable for in-process use.
	Tiers []TierSpec
	// DataDir roots the on-disk state of file-backed tiers: a tier whose
	// spec names Backend "file" journals its payloads under
	// DataDir/<shard>/<tier-name>. Required when any tier is
	// file-backed; ignored otherwise.
	DataDir string
	// Priorities select the compression cost weighting. Zero value means
	// equal weights.
	Priorities Priorities
	// SeedPath optionally names a profiler-generated JSON seed to
	// bootstrap the cost models. Empty means the builtin seed.
	SeedPath string
	// SaveSeedOnClose writes the evolved model back to SeedPath at Close
	// (the paper's "store the latest model back to the JSON seed").
	SaveSeedOnClose bool
	// Codecs restricts the library pool to the named codecs (default:
	// all twelve).
	Codecs []string
	// MonitorIntervalSec is the System Monitor refresh period in virtual
	// seconds (default 0: always fresh).
	MonitorIntervalSec float64
	// FeedbackInterval overrides how many operations elapse between
	// feedback-loop model updates (default: the seed's value).
	FeedbackInterval int
	// Parallelism bounds the worker pool that fans a task's sub-task
	// codec work across goroutines (default 0: GOMAXPROCS). Virtual-time
	// accounting is deterministic regardless of this setting — only
	// wall-clock work overlaps; use 1 to force fully serial execution.
	Parallelism int
	// DisableCompression turns HCompress into a pure multi-tier buffer
	// (the paper's MTNC baseline).
	DisableCompression bool
	// DisablePlanCache turns off the HCDP engine's whole-schema plan
	// cache (an ablation/debugging knob). With the cache on — the
	// default — repeated tasks with the same analyzed type,
	// distribution, and size are served the identical schema without
	// touching the DP; results are byte-for-byte the same either way.
	DisablePlanCache bool
	// EnableTelemetry turns on the metrics registry, trace spans, and
	// decision-audit records (Snapshot, WriteMetrics, Audits). Telemetry
	// is also enabled implicitly by MetricsAddr, TraceWriter, or the
	// SlowOp* knobs. Off, the
	// pipeline carries no instruments at all (nil-registry fast path), so
	// the zero-value Config pays nothing for observability.
	EnableTelemetry bool
	// MetricsAddr, when non-empty, starts an HTTP listener (e.g.
	// "127.0.0.1:9090" or ":0") serving Prometheus text format on
	// /metrics and expvar JSON on /debug/vars. The listener is closed by
	// Close; the bound address is reported by Client.MetricsAddr.
	MetricsAddr string
	// TraceWriter, when non-nil, receives one JSON line per trace span
	// and decision-audit record. Spans carry virtual-clock timestamps
	// only, so a serial workload produces byte-identical output
	// regardless of Parallelism — diffable in CI.
	TraceWriter io.Writer
	// AuditLogSize bounds the in-memory decision-audit ring returned by
	// Client.Audits (default 1024 when telemetry is on).
	AuditLogSize int
	// EnableProfiling mounts net/http/pprof handlers under /debug/pprof/
	// on the MetricsAddr listener. Off by default: profiling endpoints
	// are a debugging surface, not something to expose unconditionally.
	EnableProfiling bool
	// SlowOpThreshold, when positive, records every operation whose wall
	// latency reaches the threshold into the slow-op ring (Client.SlowOps,
	// hctool -slow) with its full stage breakdown and HCDP audits.
	SlowOpThreshold time.Duration
	// SlowOpSampleEvery, when positive, additionally records every Nth
	// completed operation regardless of latency, so the ring always holds
	// a background sample to compare outliers against. 1 records
	// everything; 0 (the default) disables sampling.
	SlowOpSampleEvery int
	// SlowOpLogSize bounds the slow-op ring (default 256 when either
	// SlowOpThreshold or SlowOpSampleEvery is set).
	SlowOpLogSize int
	// DemotionInterval, when positive, starts a background demoter: a
	// goroutine that wakes every interval and, for each tier filled past
	// its high watermark, trickles the oldest tasks one tier down in
	// short bounded slices until the low watermark is reached — the
	// paper's asynchronous buffer flush, without stalling the data path.
	// Zero (the default) leaves demotion off.
	DemotionInterval time.Duration
	// DemotionHighWater is the occupancy fraction at which the demoter
	// starts draining a tier (default 0.85).
	DemotionHighWater float64
	// DemotionLowWater is the occupancy fraction the demoter drains a
	// tier down to before pausing (default 0.70). Must be below
	// DemotionHighWater.
	DemotionLowWater float64
	// DemotionSliceSubTasks bounds how many sub-tasks one demotion slice
	// may scan while holding the manager lock (default 64); smaller
	// slices shorten the pauses demotion injects into the data path.
	DemotionSliceSubTasks int
	// ReadCacheFraction, when positive, enables the per-shard read
	// accelerator: an admission-controlled cache of decompressed payloads
	// sized at this fraction of the fastest tier's capacity (e.g. 0.25
	// keeps up to a quarter of tier 0 in decompressed hot blocks). A hit
	// skips the tier walk and the codec entirely and costs zero virtual
	// seconds — the cache is client-side DRAM, off the modeled timeline.
	// Entries are invalidated on overwrite, delete, demotion, and tier
	// health transitions. Note the ownership nuance: with the cache on, a
	// hit's Report.Data is shared with the cache — treat it as read-only
	// until Release. Zero (the default) disables the cache and keeps the
	// read path byte-identical to previous releases.
	ReadCacheFraction float64
	// ReadCacheMinTouches is the admission gate: a key must be read this
	// many times before its payload may cache (default 2 — single-touch
	// keys never cache, so one-shot scans cannot flush the hot set).
	ReadCacheMinTouches int
	// DisablePrefetch turns off the background access-pattern prefetcher
	// that otherwise accompanies the read cache: a worker that mines the
	// recent-access ring for repeated and sequential key patterns and
	// decompresses ahead of demand at Batch priority (it never starves
	// Interactive operations).
	DisablePrefetch bool
	// PrefetchDepth is how many keys ahead the prefetcher extends a
	// detected sequential run (default 2).
	PrefetchDepth int
	// AccessRingSize bounds the per-shard ring of recent read keys the
	// prefetcher mines for patterns (default 256).
	AccessRingSize int
	// FaultInjector, when non-nil, scripts deterministic faults against
	// the tiered store: outages, transient error windows, latency
	// spikes, read corruption, and capacity lies, all keyed to the
	// virtual clock. Nil (the default) injects nothing and costs
	// nothing on the data path.
	FaultInjector *FaultInjector
	// RetryMax bounds transient-fault retries per tier: 0 keeps the
	// default (3), negative disables retries entirely.
	RetryMax int
	// RetryBackoffSec is the initial virtual-time retry backoff (default
	// 1 ms, doubling per attempt to a 250 ms cap).
	RetryBackoffSec float64
	// OfflineThreshold is how many consecutive store errors take a tier
	// offline in the health machine (default 3).
	OfflineThreshold int
	// ProbeIntervalSec is the virtual-time delay before an offline tier's
	// first recovery probe (default 0.5 s, doubling per failed probe).
	ProbeIntervalSec float64

	// modeled switches the manager to the deterministic ModelOracle and
	// disables payload retention. Test-only (unexported): the trace
	// determinism contract is asserted against modeled costs because the
	// real oracle measures wall clocks.
	modeled bool

	// shardLabel, when non-empty, stamps every telemetry series this
	// pipeline registers with shard="<label>". Set by NewRouter for
	// multi-shard routers (unexported): a single-shard Client keeps the
	// exact pre-sharding series names, so its exposition stays
	// byte-compatible.
	shardLabel string
	// traceSink, when non-nil, overrides TraceWriter with an
	// already-built sink. NewRouter shares one sink across shards so
	// concurrent shards emit line-atomic records to one writer instead of
	// racing on it through separate sinks.
	traceSink *telemetry.Sink
}

// telemetryEnabled reports whether any telemetry surface is requested.
// The slow-op knobs imply telemetry the same way MetricsAddr and
// TraceWriter do: a slow-op record is a telemetry artifact, and its wall
// clocks come from the same instrumentation points.
func (c Config) telemetryEnabled() bool {
	return c.EnableTelemetry || c.MetricsAddr != "" || c.TraceWriter != nil ||
		c.SlowOpThreshold > 0 || c.SlowOpSampleEvery > 0
}

// DefaultTiers returns the default laptop-scale hierarchy. The dollar
// prices ballpark 2020s cloud/on-prem rates (DRAM ≫ NVMe ≫ HDD-backed
// PFS); they only matter when Priorities.Cost is nonzero.
func DefaultTiers() []TierSpec {
	return []TierSpec{
		{Name: "ram", CapacityBytes: 256 << 20, LatencySec: 1e-6, BandwidthBps: 6e9, Lanes: 4, CostPerGBMonth: 3.0},
		{Name: "nvme", CapacityBytes: 1 << 30, LatencySec: 30e-6, BandwidthBps: 2e9, Lanes: 2, CostPerGBMonth: 0.30},
		{Name: "burstbuffer", CapacityBytes: 4 << 30, LatencySec: 400e-6, BandwidthBps: 1e9, Lanes: 2, CostPerGBMonth: 0.10},
		{Name: "pfs", CapacityBytes: 64 << 30, LatencySec: 5e-3, BandwidthBps: 500e6, Lanes: 4, CostPerGBMonth: 0.04},
	}
}

// CloudTierSpec returns a modeled object-store tier (S3-class pricing:
// $0.023/GB-month storage, $0.09/GB egress; 50 ms latency) to append
// below DefaultTiers as the hierarchy's cold floor. Capacity is the
// caller's choice — pick something effectively unbounded relative to
// the workload.
func CloudTierSpec(capacityBytes int64) TierSpec {
	s := tier.CloudSpec(capacityBytes)
	return TierSpec{
		Name:            s.Name,
		CapacityBytes:   s.Capacity,
		LatencySec:      s.Latency,
		BandwidthBps:    s.Bandwidth,
		Lanes:           s.Lanes,
		Backend:         s.Backend,
		CostPerGBMonth:  s.CostPerGBMonth,
		EgressCostPerGB: s.EgressCostPerGB,
	}
}

func (c Config) hierarchy() (tier.Hierarchy, error) {
	specs := c.Tiers
	if len(specs) == 0 {
		specs = DefaultTiers()
	}
	var h tier.Hierarchy
	for _, s := range specs {
		h.Tiers = append(h.Tiers, s.spec())
	}
	if err := h.Validate(); err != nil {
		return tier.Hierarchy{}, fmt.Errorf("hcompress: %w", err)
	}
	return h, nil
}
