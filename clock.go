package hcompress

import "sync"

// vclock is the client's virtual clock: the only mutable state the
// Compress/Decompress pipeline shares besides the task registry. It has
// its own lock so Status and Stats reads never contend with in-flight
// codec work, and its critical sections are two loads/stores — the big
// per-operation lock the seed implementation held for the whole pipeline
// shrinks to this.
//
// Concurrent operations all start from the same observed virtual time and
// the clock advances to the maximum completion time (monotonically), so a
// single-threaded task sequence reproduces the serial model exactly while
// concurrent callers behave like simultaneously-arriving ranks.
type vclock struct {
	mu  sync.Mutex
	now float64
}

// Now returns the current virtual time.
func (c *vclock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the clock to t if t is later; earlier completions (a
// concurrent operation that finished before an already-recorded one) are
// ignored to keep the clock monotone.
func (c *vclock) AdvanceTo(t float64) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Advance moves the clock forward by dv seconds (non-positive values are
// ignored). Used to model idle wall time: fault windows and recovery
// probes are keyed to the virtual timeline, so tests and benchmarks step
// across them explicitly.
func (c *vclock) Advance(dv float64) {
	if dv <= 0 {
		return
	}
	c.mu.Lock()
	c.now += dv
	c.mu.Unlock()
}
